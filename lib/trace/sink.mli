(** Where events go: a bounded ring buffer plus an optional streaming
    listener.

    The ring keeps the most recent [capacity] events for after-the-fact
    export (a Chrome trace of the tail of a run is still loadable); once it
    wraps, overwritten events are counted in {!dropped} rather than
    silently lost.  Consumers that must see {e every} event — the profiler,
    whose conservation property (profile totals = machine totals) only
    holds over the complete stream — attach a {!set_listener} callback,
    which is invoked synchronously on each emit regardless of ring
    occupancy.

    The null sink is simply the absence of one: the machine stores a
    [Sink.t option] and every instrumentation site is guarded by a single
    match on it, so a tracing-off run pays one branch per {e transfer}
    (not per instruction) — near-zero cost, measured by the
    [trace/overhead] bench entry. *)

type t

val create : ?capacity:int -> engine:string -> unit -> t
(** [capacity] (default 65536) must be positive; [engine] is the engine
    label ("I1".."I4") stamped on exports and profiles built from this
    sink. *)

val engine : t -> string
val capacity : t -> int

val emit : t -> Event.t -> unit
(** Assigns the event its sequence number, stores it (evicting the oldest
    when full), and feeds the listener if one is attached. *)

val set_listener : t -> (Event.t -> unit) option -> unit
(** The streaming consumer; it sees every event with its final sequence
    number, before ring eviction is applied. *)

val events : t -> Event.t list
(** Retained events, oldest first.  At most [capacity]; the head of the
    run is missing iff [dropped > 0]. *)

val total : t -> int
(** Events emitted over the sink's lifetime. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val clear : t -> unit
(** Empty the ring and reset the counters (the listener stays). *)
