lib/machine/memory.mli: Cost
