lib/core/transfer.mli: State
