type t = { fd : Unix.file_descr; framing : Framing.t }

let connect ?max_line ?rcvbuf ~host ~port () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ ->
        invalid_arg (Printf.sprintf "Client.connect: cannot resolve host %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     (match rcvbuf with
     | Some n -> Unix.setsockopt_int fd Unix.SO_RCVBUF n
     | None -> ());
     Unix.connect fd (Unix.ADDR_INET (addr, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; framing = Framing.of_fd ?max_line fd }

let send_line t line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write t.fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let recv t = Framing.next t.framing

let rec recv_line t =
  match recv t with
  | Framing.Line l -> Some l
  | Framing.Overlong _ -> recv_line t
  | Framing.Eof -> None

let shutdown_send t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
