(** One-stop profiled execution: sink + procmap + streaming profile.

    Wires a {!Fpc_trace.Sink} whose listener feeds a {!Fpc_trace.Profile},
    boots the machine with the sink installed, runs to completion and
    finishes the profile against the machine's final meters — the
    machinery behind [fpc profile] and the service's [trace=1] option. *)

type t = {
  sink : Fpc_trace.Sink.t;
  procs : Fpc_trace.Procmap.t;
  profile : Fpc_trace.Profile.t;
}

val create :
  ?capacity:int -> image:Fpc_mesa.Image.t -> engine:Fpc_core.Engine.t -> unit -> t
(** [capacity] bounds the sink's ring (default 65536 events); the profile
    sees every event regardless. *)

val run :
  ?max_steps:int ->
  t ->
  image:Fpc_mesa.Image.t ->
  engine:Fpc_core.Engine.t ->
  instance:string ->
  proc:string ->
  args:int list ->
  Fpc_core.State.t * Interp.outcome
(** Boot with the profiler's sink attached, run, finish the profile.  The
    profile's cycle / storage-reference / transfer totals equal the
    returned outcome's exactly. *)

val render : t -> string
(** The profile table (includes a warning note if the ring dropped
    events). *)

val chrome : ?final_cycles:int -> t -> Fpc_util.Jsonout.t
(** Chrome trace-event JSON over the retained ring. *)

val folded : ?final_cycles:int -> t -> string
(** Collapsed-stack flamegraph lines over the retained ring. *)
