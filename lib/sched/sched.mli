(** A cooperative green-thread session scheduler over coroutine XFER.

    The paper's machine already {e is} a scheduler: FORK queues a process,
    YIELD round-robins, XFER switches coroutines, and a returning root
    frame retires its process — all in simulated instructions, metered like
    any other transfer.  This module adds the one thing the machine lacks,
    a host-side notion of {e time}: it runs the machine in fuel slices
    (reusing the resumable [Step_limit] boundary the service pool
    established) and, under the preemptive policy, forces a switch point
    between slices by injecting the exact YIELD the program could have
    written itself.

    Because both execution tiers deopt every process operation to
    {!Fpc_core.Transfer}, a scheduled run is bit-identical across tiers for
    any policy.  Under {!Run_to_yield} the switch points are program-defined,
    so outputs are additionally byte-identical across all engines — the
    identity E17 gates on.  Under {!Preempt} the switch points fall at
    instruction counts, which differ per engine (each engine's convention
    compiles different code), so cross-engine identity is only guaranteed
    for interleaving-insensitive programs. *)

type policy =
  | Run_to_yield
      (** sessions switch only at their own YIELD/XFER/exit points; the
          fuel slice (50k steps) exists purely for deadline checks *)
  | Preempt of { quantum : int }
      (** inject a round-robin YIELD roughly every [quantum] executed
          steps — the timer-interrupt discipline, with fuel as the clock.
          The yield lands at the next {e statement boundary} (empty
          evaluation stack), never mid-expression: the machine has no
          monitors, so a switch straddling a read-modify-write of a shared
          global would lose updates no real program could lose.  An
          injected yield is therefore exactly a YIELD the program could
          have written itself. *)

val policy_to_string : policy -> string

val policy_of_string : ?quantum:int -> string -> (policy, string) result
(** ["yield"], ["preempt"] (with the default [quantum], 1000) or
    ["preempt:N"]. *)

type stats = {
  deadline_hit : bool;
  slices : int;  (** step-function invocations *)
  preemptions : int;  (** injected yields that found another session ready *)
}

val run :
  ?policy:policy ->
  ?deadline_at:float ->
  step:(int -> Fpc_core.State.t -> unit) ->
  fuel:int ->
  Fpc_core.State.t ->
  stats
(** Drive [st] (already started) for up to [fuel] steps using [step] — one
    tier's run function, [fun n st -> Interp.run ~max_steps:n st] or the
    compiled equivalent.  Mid-run [Step_limit] traps are slice boundaries
    and are resumed; a terminal [Step_limit] (fuel exhausted) is left on
    the machine, and handing the same machine back with fresh fuel picks
    up where it stopped.  With [deadline_at] (absolute seconds), the wall
    clock is checked at every slice boundary. *)

type report = {
  forked : int;  (** sessions queued by FORK *)
  ended : int;  (** processes retired, boot process included *)
  peak_live : int;  (** high-water mark of running + ready processes *)
  slices : int;
  preemptions : int;
  switch_xfers : int;  (** XF/FORK/YIELD/switch transfers, injected ones included *)
  rs_flushes : int;  (** return-stack flushes (I3/I4); switches force them *)
  rs_flush_rate : float;  (** flushes per switch transfer *)
  bank_overflows : int;  (** bank-file spills (I4) *)
  bank_overflow_rate : float;  (** overflows per call *)
  frame_peak_words : int;
      (** what the shared frame heap actually had to hold at its peak *)
  lifo_reserved_words : int;
      (** what dedicated per-session LIFO stacks would reserve:
          peak-live sessions times the worst per-session extent *)
  footprint_ratio : float;  (** frame_peak / lifo_reserved; lower favours the heap *)
}

val report : ?lifo_reserved:int -> stats:stats -> Fpc_core.State.t -> report
(** Read the scheduling story out of a finished machine.  Deterministic:
    every field comes from simulated meters, never the host clock. *)

val report_lines : report -> string list
(** Stable, human-readable rendering (one line per group) — what
    [fpc sched] prints and the cram test pins. *)
