lib/core/engine.ml: Fpc_regbank Printf
