type params = {
  mem_ref_cycles : int;
  cache_hit_cycles : int;
  bank_ref_cycles : int;
  dispatch_cycles : int;
  jump_cycles : int;
  trap_cycles : int;
  software_alloc_cycles : int;
}

let default_params =
  {
    mem_ref_cycles = 4;
    cache_hit_cycles = 2;
    bank_ref_cycles = 1;
    dispatch_cycles = 1;
    jump_cycles = 1;
    trap_cycles = 50;
    software_alloc_cycles = 100;
  }

type t = {
  p : params;
  mutable cycles : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable bank_refs : int;
  mutable dispatches : int;
}

let create ?(params = default_params) () =
  { p = params; cycles = 0; mem_reads = 0; mem_writes = 0; bank_refs = 0; dispatches = 0 }

let params t = t.p

let mem_read t =
  t.mem_reads <- t.mem_reads + 1;
  t.cycles <- t.cycles + t.p.mem_ref_cycles

let mem_write t =
  t.mem_writes <- t.mem_writes + 1;
  t.cycles <- t.cycles + t.p.mem_ref_cycles

let bank_ref t =
  t.bank_refs <- t.bank_refs + 1;
  t.cycles <- t.cycles + t.p.bank_ref_cycles

let bank_ref_n t n =
  t.bank_refs <- t.bank_refs + n;
  t.cycles <- t.cycles + (n * t.p.bank_ref_cycles)

let dispatch t =
  t.dispatches <- t.dispatches + 1;
  t.cycles <- t.cycles + t.p.dispatch_cycles

let dispatch_n t n =
  t.dispatches <- t.dispatches + n;
  t.cycles <- t.cycles + (n * t.p.dispatch_cycles)

let refs_n t ~reads ~writes =
  t.mem_reads <- t.mem_reads + reads;
  t.mem_writes <- t.mem_writes + writes;
  t.cycles <- t.cycles + ((reads + writes) * t.p.mem_ref_cycles)

let block_bill t ~instrs ~reads ~writes =
  t.dispatches <- t.dispatches + instrs;
  t.mem_reads <- t.mem_reads + reads;
  t.mem_writes <- t.mem_writes + writes;
  t.cycles <-
    t.cycles + (instrs * t.p.dispatch_cycles)
    + ((reads + writes) * t.p.mem_ref_cycles)

let jump t = t.cycles <- t.cycles + t.p.jump_cycles
let trap t = t.cycles <- t.cycles + t.p.trap_cycles
let software_alloc t = t.cycles <- t.cycles + t.p.software_alloc_cycles
let add_cycles t n = t.cycles <- t.cycles + n
let cycles t = t.cycles
let mem_reads t = t.mem_reads
let mem_writes t = t.mem_writes
let mem_refs t = t.mem_reads + t.mem_writes
let bank_refs t = t.bank_refs
let dispatches t = t.dispatches

let reset t =
  t.cycles <- 0;
  t.mem_reads <- 0;
  t.mem_writes <- 0;
  t.bank_refs <- 0;
  t.dispatches <- 0

type snapshot = {
  s_cycles : int;
  s_mem_reads : int;
  s_mem_writes : int;
  s_bank_refs : int;
  s_dispatches : int;
}

let snapshot t =
  {
    s_cycles = t.cycles;
    s_mem_reads = t.mem_reads;
    s_mem_writes = t.mem_writes;
    s_bank_refs = t.bank_refs;
    s_dispatches = t.dispatches;
  }

let delta ~before ~after =
  {
    s_cycles = after.s_cycles - before.s_cycles;
    s_mem_reads = after.s_mem_reads - before.s_mem_reads;
    s_mem_writes = after.s_mem_writes - before.s_mem_writes;
    s_bank_refs = after.s_bank_refs - before.s_bank_refs;
    s_dispatches = after.s_dispatches - before.s_dispatches;
  }
