lib/regbank/bank_file.mli: Fpc_frames Fpc_machine
