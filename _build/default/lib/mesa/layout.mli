(** The memory map of the simulated machine.

    An Alto-class 16-bit machine: at most 64 K words of storage, all
    word-addressable structures (frames, global frames, tables) within it so
    that a 16-bit word can name any of them.

    {v
    0      .. 15          reserved (word 2 = trap-handler context)
    16     .. 1039        GFT (1024 entries)
    1040   .. 1040+C-1    AV (one word per frame size class)
    static .. heap_base   global frames, link vectors, interface records
    heap_base..heap_limit the frame heap (the "frame region" of §7.4)
    code   .. mem_end     code segments
    v} *)

type t = {
  memory_words : int;
  trap_handler_addr : int;  (** reserved word 2 *)
  gft_base : int;
  av_base : int;
  static_base : int;  (** first word available for global frames / LVs *)
  heap_base : int;
  heap_limit : int;
  code_region_base : int;  (** first word of the code region *)
}

val make : ?memory_words:int -> ladder:Fpc_frames.Size_class.t -> unit -> t
(** Default [memory_words] = 65536.  Raises [Invalid_argument] if the map
    does not fit (needs at least 16 K words). *)

val in_frame_region : t -> int -> bool
(** §7.4: "by confining frames to a fixed frame region of the address
    space, we can be sure for most storage references that C2 has not
    arisen". *)
