lib/mesa/layout.ml: Fpc_frames Gft
