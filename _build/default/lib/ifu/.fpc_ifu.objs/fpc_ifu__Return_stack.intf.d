lib/ifu/return_stack.mli:
