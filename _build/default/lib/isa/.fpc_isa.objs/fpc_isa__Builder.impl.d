lib/isa/builder.ml: Buffer Bytes Char Fpc_util List Opcode Printf
