type t = {
  mutex : Mutex.t;
  work_available : Condition.t;  (** queue non-empty, or stopping *)
  job_done : Condition.t;  (** a result landed / the pool drained *)
  queue : (int * Job.spec) Queue.t;
  mutable completed_rev : Job.result list;  (** since the last poll/await *)
  mutable next_id : int;
  mutable active : int;  (** jobs currently executing *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
  cache : Image_cache.t;
  metrics : Metrics.t;  (** guarded by [mutex] *)
  started_at : float;
}

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

(* ---- executing one job (never raises) ---- *)

let now = Unix.gettimeofday

let failed ?(stats = Job.no_stats) id spec kind msg =
  { Job.id; spec; outcome = Job.Failed (kind, msg); stats; profile = None }

let execute cache id (spec : Job.spec) =
  match (Job.engine_of_name spec.engine, Job.source_text spec.source) with
  | Error m, _ | _, Error m -> failed id spec Job.Bad_request m
  | Ok engine, Ok source -> (
    let convention = Fpc_compiler.Convention.for_engine engine in
    match Image_cache.find_or_compile cache ~convention ~source with
    | Error m -> failed id spec Job.Compile_error m
    | exception e -> failed id spec Job.Internal (Printexc.to_string e)
    | Ok (image, cache_hit, compile_s) -> (
      let t0 = now () in
      let go () =
        if spec.trace then begin
          let p = Fpc_interp.Profiler.create ~image ~engine () in
          let st, _ =
            Fpc_interp.Profiler.run ~max_steps:spec.fuel p ~image ~engine
              ~instance:"Main" ~proc:"main" ~args:[]
          in
          (st, Some (Fpc_trace.Profile.summary p.Fpc_interp.Profiler.profile))
        end
        else
          ( Fpc_interp.Interp.run_program ~max_steps:spec.fuel ~image ~engine
              ~instance:"Main" ~proc:"main" ~args:[] (),
            None )
      in
      match go () with
      | exception Not_found ->
        failed id spec Job.Compile_error "program has no Main.main()"
      | exception e -> failed id spec Job.Internal (Printexc.to_string e)
      | st, profile ->
        let o = Fpc_interp.Interp.outcome st in
        let stats =
          {
            Job.cache_hit;
            compile_s;
            run_s = now () -. t0;
            instructions = o.o_instructions;
            cycles = o.o_cycles;
            mem_refs = o.o_mem_refs;
            fastpath = o.o_fastpath;
          }
        in
        let outcome =
          match o.o_status with
          | Fpc_core.State.Halted -> Job.Output o.o_output
          | Fpc_core.State.Running ->
            Job.Failed (Job.Internal, "interpreter stopped while still running")
          | Fpc_core.State.Trapped Fpc_core.State.Step_limit ->
            Job.Failed
              ( Job.Fuel_exhausted,
                Printf.sprintf "step budget of %d exhausted" spec.fuel )
          | Fpc_core.State.Trapped r ->
            Job.Failed
              (Job.Trapped (Fpc_core.State.trap_reason_to_string r), "machine trap")
        in
        { Job.id; spec; outcome; stats; profile }))

(* ---- the worker loop ---- *)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then (* stopping, queue drained *)
    Mutex.unlock t.mutex
  else begin
    let id, spec = Queue.pop t.queue in
    t.active <- t.active + 1;
    Mutex.unlock t.mutex;
    let result = execute t.cache id spec in
    Mutex.lock t.mutex;
    t.active <- t.active - 1;
    t.completed_rev <- result :: t.completed_rev;
    Metrics.record t.metrics result;
    Condition.broadcast t.job_done;
    Mutex.unlock t.mutex;
    worker_loop t
  end

let create ?domains ?cache () =
  let domains = Option.value domains ~default:(recommended_domains ()) in
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let cache = match cache with Some c -> c | None -> Image_cache.create () in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      queue = Queue.create ();
      completed_rev = [];
      next_id = 0;
      active = 0;
      stopping = false;
      workers = [];
      n_domains = domains;
      cache;
      metrics = Metrics.create ~domains;
      started_at = now ();
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.n_domains
let cache t = t.cache

let submit t spec =
  Mutex.lock t.mutex;
  if t.stopping then (
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down");
  let id = t.next_id in
  t.next_id <- id + 1;
  Queue.push (id, spec) t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex;
  id

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue + t.active in
  Mutex.unlock t.mutex;
  n

let take_completed t =
  let rs = t.completed_rev in
  t.completed_rev <- [];
  List.rev rs

let poll t =
  Mutex.lock t.mutex;
  let rs = take_completed t in
  Mutex.unlock t.mutex;
  rs

let await t =
  Mutex.lock t.mutex;
  while not (Queue.is_empty t.queue && t.active = 0) do
    Condition.wait t.job_done t.mutex
  done;
  let rs = take_completed t in
  Mutex.unlock t.mutex;
  List.sort (fun (a : Job.result) b -> compare a.id b.id) rs

let metrics t =
  Mutex.lock t.mutex;
  let wall_s = now () -. t.started_at in
  let s = Metrics.snapshot t.metrics ~wall_s ~cache:(Image_cache.stats t.cache) in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let run_jobs ?domains ?cache specs =
  let t = create ?domains ?cache () in
  List.iter (fun spec -> ignore (submit t spec)) specs;
  let results = await t in
  let snapshot = metrics t in
  shutdown t;
  (results, snapshot)
