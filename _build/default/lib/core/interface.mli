(** Interface records (§3).

    "Some languages, including Mesa, have a notion of a cluster, package,
    or interface, which is a collection of procedures grouped under a
    common name...  Then the client needs only a pointer to the interface
    record in order to call any of its procedures.  The components of an
    interface record will be contexts for the various procedures."

    An interface record is an array of packed context words in storage; a
    client calls component [k] with the §4 sequence LOADLITERAL(record);
    READFIELD(k); XFER — in this ISA: [Li record; Ldfld k; Xf]. *)

type t = { if_addr : int; if_slots : (string * string) array }

val create :
  Fpc_mesa.Image.t -> slots:(string * string) array -> t
(** Build an interface record in the image's static region; each slot
    names an (instance, procedure).  Raises [Not_found] for unknown
    names, [Invalid_argument] if the static region is full. *)

val address : t -> int

val slot_index : t -> proc:string -> int
(** Position of the first slot whose procedure name is [proc].  Raises
    [Not_found]. *)

val rebind :
  Fpc_mesa.Image.t -> t -> slot:int -> target:string * string -> unit
(** Repoint one component, unmetered — interfaces "simplify the task of
    linking up a reference to an external procedure" precisely because
    rebinding is one store. *)

val call_sequence : t -> slot:int -> Fpc_isa.Opcode.t list
(** The client-side instructions that invoke component [slot] (arguments
    must already be on the evaluation stack):
    [Li record-address; Ldfld slot; Xf]. *)
