(** The compilation pipeline: source text -> checked AST -> lowered AST ->
    byte-coded modules -> linked image. *)

val front_end : string -> (Fpc_lang.Ast.program * Fpc_lang.Typecheck.env, string) result
(** Parse and type-check. *)

val modules :
  ?convention:Convention.t ->
  string ->
  (Fpc_mesa.Compiled.t list, string) result
(** Compile every module in the source (default convention
    {!Convention.external_}). *)

val image :
  ?convention:Convention.t ->
  ?memory_words:int ->
  ?extra_instances:string list ->
  string ->
  (Fpc_mesa.Image.t, string) result
(** Compile and link in one step; the image's linkage follows the
    convention. *)

val image_for_engine :
  engine:Fpc_core.Engine.t ->
  ?memory_words:int ->
  string ->
  (Fpc_mesa.Image.t, string) result
(** Compile with {!Convention.for_engine} so the image matches the engine
    it will run on. *)

val run :
  ?engine:Fpc_core.Engine.t ->
  ?max_steps:int ->
  ?instance:string ->
  ?proc:string ->
  ?args:int list ->
  string ->
  (Fpc_interp.Interp.outcome, string) result
(** Compile, link and execute ["Main.main"] (defaults) under the given
    engine (default I2) — the one-call quickstart. *)
