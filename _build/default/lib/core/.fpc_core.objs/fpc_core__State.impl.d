lib/core/state.ml: Cost Engine Eval_stack Fpc_frames Fpc_ifu Fpc_machine Fpc_mesa Fpc_regbank Fpc_util Image Layout List Memory Option Printf Queue Simple_links Stack
