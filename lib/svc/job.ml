type source =
  | Suite of string
  | Inline of string
  | Sessions of Fpc_workload.Sessions.config

type tier = Interp | Compiled | Auto

type spec = {
  source : source;
  engine : string;
  tier : tier;
  fuel : int;
  trace : bool;
  deadline_ms : int option;
  sched : Fpc_sched.Sched.policy option;
  devirt : bool option;
}

let default_fuel = 20_000_000

let spec ?(engine = "i2") ?(tier = Auto) ?(fuel = default_fuel)
    ?(trace = false) ?deadline_ms ?sched ?devirt source =
  { source; engine; tier; fuel; trace; deadline_ms; sched; devirt }

(* A job runs under the scheduler iff it asked for a policy or its source
   is a session workload (which defaults to run-to-yield, the policy whose
   outputs are engine-independent). *)
let effective_sched s =
  match (s.sched, s.source) with
  | (Some _ as p), _ -> p
  | None, Sessions _ -> Some Fpc_sched.Sched.Run_to_yield
  | None, (Suite _ | Inline _) -> None

let tier_of_name name =
  match String.lowercase_ascii name with
  | "interp" -> Ok Interp
  | "compiled" -> Ok Compiled
  | "auto" -> Ok Auto
  | s -> Error (Printf.sprintf "unknown tier %s (use interp, compiled or auto)" s)

let tier_to_string = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Auto -> "auto"

type error_kind =
  | Bad_request
  | Compile_error
  | Trapped of string
  | Fuel_exhausted
  | Deadline_exceeded
  | Internal

let error_kind_to_string = function
  | Bad_request -> "bad-request"
  | Compile_error -> "compile-error"
  | Trapped r -> Printf.sprintf "trapped(%s)" r
  | Fuel_exhausted -> "fuel-exhausted"
  | Deadline_exceeded -> "deadline-exceeded"
  | Internal -> "internal"

type outcome = Output of int list | Failed of error_kind * string

type translation =
  | No_translation
  | Translated of {
      hit : bool;  (** the image's translation was already attached *)
      translate_s : float;
      lazy_translated : int;  (** procedures this run translated on entry *)
      fused_calls : int;  (** calls retired through fused call sites *)
      procs : int;  (** procedure bodies the translation covers *)
      procs_translated : int;  (** of those, translated so far (shared) *)
      invalidations : int;  (** relink invalidations observed (shared) *)
    }

type stats = {
  cache_hit : bool;
  compile_s : float;
  run_s : float;
  minor_words : int;
  translation : translation;
  instructions : int;
  cycles : int;
  mem_refs : int;
  fastpath : Fpc_interp.Interp.fastpath;
  devirt_stats : Fpc_mesa.Image.devirt_stats option;
}

let no_stats =
  {
    cache_hit = false;
    compile_s = 0.0;
    run_s = 0.0;
    minor_words = 0;
    translation = No_translation;
    instructions = 0;
    cycles = 0;
    mem_refs = 0;
    fastpath = Fpc_interp.Interp.no_fastpath;
    devirt_stats = None;
  }

type result = {
  id : int;
  spec : spec;
  outcome : outcome;
  stats : stats;
  profile : Fpc_trace.Profile.summary option;
  sched : Fpc_sched.Sched.report option;
}

let engine_of_name name =
  match String.lowercase_ascii name with
  | "i1" -> Ok Fpc_core.Engine.i1
  | "i2" -> Ok Fpc_core.Engine.i2
  | "i3" -> Ok (Fpc_core.Engine.i3 ())
  | "i4" -> Ok (Fpc_core.Engine.i4 ())
  | s -> Error (Printf.sprintf "unknown engine %s (use i1, i2, i3 or i4)" s)

let source_text = function
  | Inline src -> Ok src
  | Sessions c -> (
    match Fpc_workload.Sessions.program c with
    | src -> Ok src
    | exception Invalid_argument m -> Error m)
  | Suite name -> (
    match Fpc_workload.Programs.find name with
    | src -> Ok src
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown suite program %s (suite: %s)" name
           (String.concat ", " Fpc_workload.Programs.names)))

let source_label = function
  | Suite name -> name
  | Sessions c -> Printf.sprintf "sessions:%d" c.Fpc_workload.Sessions.total
  | Inline src ->
    "inline:" ^ String.sub (Digest.to_hex (Digest.string src)) 0 8

let outcome_equal a b =
  match (a, b) with
  | Output xs, Output ys -> xs = ys
  | Failed (ka, ma), Failed (kb, mb) -> ka = kb && String.equal ma mb
  | _ -> false

(* ---- request lines ---- *)

let escape_src s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | ' ' -> Buffer.add_string buf "\\s"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_src s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then (
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 's' -> Buffer.add_char buf ' '
       | c -> Buffer.add_char buf c);
       incr i)
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let parse_request line =
  let fields =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun f -> f <> "")
  in
  let ( let* ) = Result.bind in
  (* Twelve independent keys: refs beat a twelve-tuple accumulator. *)
  let src = ref None and engine = ref "i2" and tier = ref Auto in
  let fuel = ref None and trace = ref false and deadline = ref None in
  let sessions = ref None and window = ref None and seed = ref None in
  let sched = ref None and quantum = ref None and devirt = ref None in
  let pos_int key value store =
    match int_of_string_opt value with
    | Some n when n > 0 ->
      store n;
      Ok ()
    | Some _ | None ->
      Error (Printf.sprintf "%s=%s is not a positive integer" key value)
  in
  let parse_field field =
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "malformed field %S (want key=value)" field)
    | Some eq -> (
      let key = String.sub field 0 eq in
      let value = String.sub field (eq + 1) (String.length field - eq - 1) in
      match key with
      | "prog" ->
        src := Some (Suite value);
        Ok ()
      | "src" ->
        src := Some (Inline (unescape_src value));
        Ok ()
      | "engine" ->
        engine := value;
        Ok ()
      | "tier" ->
        let* t = tier_of_name value in
        tier := t;
        Ok ()
      | "fuel" -> pos_int "fuel" value (fun n -> fuel := Some n)
      | "trace" -> (
        match value with
        | "1" | "true" ->
          trace := true;
          Ok ()
        | "0" | "false" ->
          trace := false;
          Ok ()
        | v -> Error (Printf.sprintf "trace=%s is not 0/1" v))
      | "deadline_ms" ->
        pos_int "deadline_ms" value (fun n -> deadline := Some n)
      | "sessions" -> pos_int "sessions" value (fun n -> sessions := Some n)
      | "window" -> pos_int "window" value (fun n -> window := Some n)
      | "seed" -> (
        match int_of_string_opt value with
        | Some n when n >= 0 ->
          seed := Some n;
          Ok ()
        | Some _ | None ->
          Error (Printf.sprintf "seed=%s is not a non-negative integer" value))
      | "sched" ->
        let* p = Fpc_sched.Sched.policy_of_string value in
        sched := Some p;
        Ok ()
      | "quantum" -> pos_int "quantum" value (fun n -> quantum := Some n)
      | "devirt" -> (
        match value with
        | "1" | "true" ->
          devirt := Some true;
          Ok ()
        | "0" | "false" ->
          devirt := Some false;
          Ok ()
        | v -> Error (Printf.sprintf "devirt=%s is not 0/1" v))
      | k ->
        Error
          (Printf.sprintf
             "unknown key %s (use prog, src, sessions, window, seed, engine, \
              tier, fuel, trace, deadline_ms, sched, quantum, devirt)"
             k))
  in
  let* () =
    List.fold_left
      (fun acc field ->
        let* () = acc in
        parse_field field)
      (Ok ()) fields
  in
  let* source =
    match (!src, !sessions) with
    | Some _, Some _ -> Error "give one of prog/src or sessions=, not both"
    | None, None -> Error "request needs prog=NAME, src=TEXT or sessions=N"
    | Some s, None ->
      if !window <> None || !seed <> None then
        Error "window=/seed= only apply to sessions= jobs"
      else Ok s
    | None, Some total ->
      let c = Fpc_workload.Sessions.default ~total in
      Ok
        (Sessions
           {
             c with
             Fpc_workload.Sessions.window =
               Option.value !window ~default:c.Fpc_workload.Sessions.window;
             seed = Option.value !seed ~default:c.Fpc_workload.Sessions.seed;
           })
  in
  let* sched =
    match (!sched, !quantum) with
    | Some (Fpc_sched.Sched.Preempt _), Some q ->
      Ok (Some (Fpc_sched.Sched.Preempt { quantum = q }))
    | (Some Fpc_sched.Sched.Run_to_yield | None), Some _ ->
      Error "quantum= requires sched=preempt"
    | p, None -> Ok p
  in
  Ok
    {
      source;
      engine = !engine;
      tier = !tier;
      fuel = Option.value !fuel ~default:default_fuel;
      trace = !trace;
      deadline_ms = !deadline;
      sched;
      devirt = !devirt;
    }

let request_of_spec s =
  let src =
    match s.source with
    | Suite name -> "prog=" ^ name
    | Inline text -> "src=" ^ escape_src text
    | Sessions c ->
      Printf.sprintf "sessions=%d window=%d seed=%d" c.Fpc_workload.Sessions.total
        c.Fpc_workload.Sessions.window c.Fpc_workload.Sessions.seed
  in
  Printf.sprintf "%s engine=%s fuel=%d%s%s%s%s%s" src s.engine s.fuel
    (match s.tier with
    | Auto -> ""  (* the default, omitted to keep request lines stable *)
    | t -> " tier=" ^ tier_to_string t)
    (if s.trace then " trace=1" else "")
    (match s.deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf " deadline_ms=%d" ms)
    (match s.sched with
    | None -> ""
    | Some Fpc_sched.Sched.Run_to_yield -> " sched=yield"
    | Some (Fpc_sched.Sched.Preempt { quantum }) ->
      Printf.sprintf " sched=preempt quantum=%d" quantum)
    (match s.devirt with
    | None -> ""  (* left to the service default, omitted like tier *)
    | Some b -> " devirt=" ^ if b then "1" else "0")

(* ---- rendering ---- *)

let result_line r =
  let head =
    Printf.sprintf "#%d %s %s" r.id (source_label r.spec.source)
      (String.lowercase_ascii r.spec.engine)
  in
  let sched_tail =
    (* preemption/slice counts are fuel-dependent host policy; the line
       keeps only the simulated-meter fields, like everything else here *)
    match r.sched with
    | None -> ""
    | Some s ->
      Printf.sprintf " sessions=%d peak-live=%d frame-peak=%dw"
        s.Fpc_sched.Sched.forked s.Fpc_sched.Sched.peak_live
        s.Fpc_sched.Sched.frame_peak_words
  in
  match r.outcome with
  | Output words ->
    Printf.sprintf "%s ok output=%s instructions=%d cycles=%d mem-refs=%d%s"
      head
      (String.concat "," (List.map string_of_int words))
      r.stats.instructions r.stats.cycles r.stats.mem_refs sched_tail
  | Failed (kind, msg) ->
    Printf.sprintf "%s error %s: %s" head (error_kind_to_string kind) msg

let result_to_json ?(times = true) r =
  let open Fpc_util.Jsonout in
  let outcome_fields =
    match r.outcome with
    | Output words ->
      [
        ("status", String "ok");
        ("output", List (List.map (fun w -> Int w) words));
      ]
    | Failed (kind, msg) ->
      [
        ("status", String "error");
        ("error", String (error_kind_to_string kind));
        ("message", String msg);
      ]
  in
  let fp = r.stats.fastpath in
  let sim_fields =
    [
      ("instructions", Int r.stats.instructions);
      ("cycles", Int r.stats.cycles);
      ("mem_refs", Int r.stats.mem_refs);
      ( "fastpath",
        Obj
          [
            ("fast_transfers", Int fp.Fpc_interp.Interp.f_fast_transfers);
            ("slow_transfers", Int fp.f_slow_transfers);
            ("rs_pushes", Int fp.f_rs_pushes);
            ("rs_hits", Int fp.f_rs_hits);
            ("rs_flushes", Int fp.f_rs_flushes);
            ("rs_spills", Int fp.f_rs_spills);
            ("bank_words_loaded", Int fp.f_bank_words_loaded);
            ("bank_words_spilled", Int fp.f_bank_words_spilled);
            ("ff_hits", Int fp.f_ff_hits);
            ("ff_misses", Int fp.f_ff_misses);
            ("frame_allocs", Int fp.f_frame_allocs);
            ("frame_frees", Int fp.f_frame_frees);
          ] );
    ]
  in
  let profile_fields =
    match r.profile with
    | None -> []
    | Some s -> [ ("profile", Fpc_trace.Profile.summary_to_json s) ]
  in
  let sched_fields =
    (* all simulated meters — deterministic, so not gated on [times] *)
    match r.sched with
    | None -> []
    | Some s ->
      [
        ( "sched",
          Obj
            [
              ("forked", Int s.Fpc_sched.Sched.forked);
              ("ended", Int s.ended);
              ("peak_live", Int s.peak_live);
              ("switch_xfers", Int s.switch_xfers);
              ("rs_flushes", Int s.rs_flushes);
              ("bank_overflows", Int s.bank_overflows);
              ("frame_peak_words", Int s.frame_peak_words);
              ("lifo_reserved_words", Int s.lifo_reserved_words);
            ] );
      ]
  in
  let time_fields =
    (* Which tier actually ran (and what translating cost) is a host-side
       observation like [run_s]: the simulated fields above are identical
       either way, which is what keeps [--json] byte-stable across tiers. *)
    if times then
      [
        ("cache_hit", Bool r.stats.cache_hit);
        ("compile_s", Float r.stats.compile_s);
        ("run_s", Float r.stats.run_s);
        ("minor_words", Int r.stats.minor_words);
      ]
      @ (match r.stats.translation with
        | No_translation -> [ ("tier", String "interp") ]
        | Translated
            {
              hit;
              translate_s;
              lazy_translated;
              fused_calls;
              procs;
              procs_translated;
              invalidations;
            } ->
          [
            ("tier", String "compiled");
            ("translation_hit", Bool hit);
            ("translate_s", Float translate_s);
            ("lazy_translated", Int lazy_translated);
            ("fused_calls", Int fused_calls);
            ("procs", Int procs);
            ("procs_translated", Int procs_translated);
            ("invalidations", Int invalidations);
          ])
      @
      (* Which image variant the cache served (devirtualized or not) is a
         host/service choice like the tier: the meters already reflect it,
         so the breakdown rides with the non-deterministic fields. *)
      (match r.stats.devirt_stats with
      | None -> []
      | Some d ->
        [
          ( "devirt",
            Obj
              [
                ("sites", Int d.Fpc_mesa.Image.dv_sites);
                ("proven", Int d.dv_proven);
                ("rewritten", Int d.dv_rewritten);
                ("short", Int d.dv_short);
                ("abstained", Int d.dv_abstained);
              ] );
        ])
    else []
  in
  Obj
    ([
       ("id", Int r.id);
       ("source", String (source_label r.spec.source));
       ("engine", String (String.lowercase_ascii r.spec.engine));
       ("fuel", Int r.spec.fuel);
     ]
    @ (match r.spec.deadline_ms with
      | None -> []
      | Some ms -> [ ("deadline_ms", Int ms) ])
    @ (if r.spec.trace then [ ("trace", Bool true) ] else [])
    @ outcome_fields @ sim_fields @ profile_fields @ sched_fields
    @ time_fields)
