(** A hashed timer wheel: O(1) arm and cancel, expiry by sweeping the
    slots the clock has passed.  Times are absolute host seconds (the
    caller picks the clock and hands it to {!advance}); granularity is
    the firing resolution, not a tick the caller must drive — a slot
    holds entries for any future revolution and due-ness is re-checked
    per entry.

    Built for the reactor's per-job deadlines: many short-lived timers,
    most of them cancelled (the job finished in time) before they fire.
    Not thread-safe; the owning loop is single-threaded by design. *)

type timer

type t

val create : ?granularity_ms:int -> ?slots:int -> now:float -> unit -> t
(** Defaults: 2 ms granularity, 512 slots (≈1 s per revolution). *)

val add : t -> at:float -> (unit -> unit) -> timer
(** Arm a timer to fire at absolute time [at] (may be in the past: it
    fires on the next {!advance}). *)

val cancel : t -> timer -> unit
(** Disarm; idempotent, and a no-op after the timer fired. *)

val advance : t -> now:float -> unit
(** Fire every live timer with [fire_at <= now], in slot order. *)

val next_due : t -> now:float -> float option
(** Seconds until the earliest live timer ([Some 0.] if overdue), [None]
    if nothing is armed — the loop's wait timeout. *)

val live : t -> int
val fired : t -> int
