lib/mesa/linker.mli: Compiled Fpc_frames Fpc_machine Image
