(** The byte-code interpreter: fetch, decode, dispatch.

    Instruction fetch itself is unmetered in every engine (the machines of
    interest all have an instruction-fetch unit; its bandwidth is not what
    the paper varies) — what distinguishes I1..I4 is the {e data}
    references and redirects performed by transfers, frame allocation and
    variable access, all charged through {!Fpc_core.Transfer} and
    {!Fpc_core.State}. *)

type fastpath = {
  f_fast_transfers : int;  (** calls/returns completed with no storage reference *)
  f_slow_transfers : int;
  f_rs_pushes : int;  (** IFU return stack (§6); zero under I1/I2 *)
  f_rs_hits : int;
  f_rs_empty_pops : int;
  f_rs_flushes : int;
  f_rs_flushed_entries : int;
  f_rs_spills : int;
  f_bank_underflows : int;  (** register banks (§7); zero except under I4 *)
  f_bank_overflows : int;
  f_bank_words_loaded : int;
  f_bank_words_spilled : int;
  f_ff_hits : int;  (** free-frame-stack allocations (§7.1) *)
  f_ff_misses : int;
  f_frame_allocs : int;
  f_frame_frees : int;
}
(** Where the engine's fast paths hit and missed — per run, the counters
    behind the paper's E1/E11 tables. *)

val no_fastpath : fastpath
(** All-zero counters, for results that never reached the machine. *)

type outcome = {
  o_status : Fpc_core.State.status;
  o_output : int list;  (** words OUTput, in order *)
  o_stack : int list;  (** final evaluation stack, bottom first *)
  o_instructions : int;
  o_cycles : int;
  o_mem_refs : int;
  o_calls : int;
  o_returns : int;
  o_other_xfers : int;  (** XF, FORK, YIELD, process switches *)
  o_fastpath : fastpath;
}

val boot :
  ?tracer:Fpc_trace.Sink.t ->
  image:Fpc_mesa.Image.t ->
  engine:Fpc_core.Engine.t ->
  instance:string ->
  proc:string ->
  args:int list ->
  unit ->
  Fpc_core.State.t
(** A machine ready to execute [instance.proc args].  Raises [Not_found]
    for an unknown procedure. *)

val step : Fpc_core.State.t -> unit
(** Execute one instruction (no-op unless the status is [Running]). *)

val exec : Fpc_core.State.t -> instr_pc:int -> Fpc_isa.Opcode.t -> unit
(** The effect of one decoded instruction, exactly as the dispatch loop
    performs it — the PC must already have been advanced past the
    instruction.  May raise [Eval_stack.Overflow]/[Underflow] or
    {!Fpc_core.Transfer.Machine_trap}; {!step} converts those to traps.
    Exposed so the compiled tier ({!Fpc_tier}) can reuse the single
    authoritative opcode semantics instead of duplicating it. *)

val run : ?max_steps:int -> Fpc_core.State.t -> unit
(** Step until the machine halts or traps; [max_steps] (default 20
    million) guards against runaways, recording a [Step_limit] trap. *)

val run_traced :
  ?max_steps:int ->
  Fpc_core.State.t ->
  on_step:(pc_abs:int -> Fpc_isa.Opcode.t -> Fpc_core.State.t -> unit) ->
  unit
(** As {!run}, invoking [on_step] with each instruction about to execute —
    the debugger/teaching hook behind [fpc trace]. *)

val outcome : Fpc_core.State.t -> outcome

val procmap_of_image : Fpc_mesa.Image.t -> Fpc_trace.Procmap.t
(** Code ranges of every linked procedure, for attributing trace PCs.
    Instances of one module share code and are listed once, under the
    module's name. *)

val run_program :
  ?max_steps:int ->
  ?tracer:Fpc_trace.Sink.t ->
  image:Fpc_mesa.Image.t ->
  engine:Fpc_core.Engine.t ->
  instance:string ->
  proc:string ->
  args:int list ->
  unit ->
  Fpc_core.State.t
(** [boot] then [run]; returns the final state for inspection. *)
