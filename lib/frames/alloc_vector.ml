open Fpc_machine

type mode = Fast | Software_only

(* Live-block bookkeeping is a flat array indexed by quad offset from
   heap_base: every ladder class is a multiple of 4 words (Size_class
   rounds up to quads), so LF = block + 4 is always quad-aligned relative
   to heap_base.  A slot holds [-1] when free, else the packed pair
   [(requested lsl 8) lor fsi].  This replaces a Hashtbl whose
   replace/remove pair allocated on every call/return. *)

type t = {
  mode : mode;
  mem : Memory.t;
  ladder : Size_class.t;
  av_base : int;
  heap_base : int;
  heap_limit : int;
  replenish_count : int;
  live : int array; (* quad-indexed by lf; -1 free, else (requested lsl 8) lor fsi *)
  mutable live_blocks : int;
  mutable wilderness : int;
  mutable fast_allocs : int;
  mutable frees : int;
  mutable software_traps : int;
  mutable live_words : int;
  mutable peak_live_words : int;
  mutable requested_words : int;
  mutable free_pool_words : int;
  mutable on_event : (Fpc_trace.Event.kind -> unit) option;
}

exception Out_of_frame_heap

let create ?(mode = Fast) ?(replenish_count = 8) ~mem ~ladder ~av_base ~heap_base
    ~heap_limit () =
  if heap_base land 3 <> 0 then invalid_arg "Alloc_vector.create: heap_base not quad-aligned";
  if heap_limit > Memory.size mem then invalid_arg "Alloc_vector.create: heap beyond memory";
  if av_base + Size_class.class_count ladder > heap_base then
    invalid_arg "Alloc_vector.create: AV overlaps heap";
  for i = 0 to Size_class.class_count ladder - 1 do
    Memory.poke mem (av_base + i) 0
  done;
  {
    mode;
    mem;
    ladder;
    av_base;
    heap_base;
    heap_limit;
    replenish_count;
    live = Array.make (((heap_limit - heap_base) lsr 2) + 1) (-1);
    live_blocks = 0;
    wilderness = heap_base;
    fast_allocs = 0;
    frees = 0;
    software_traps = 0;
    live_words = 0;
    peak_live_words = 0;
    requested_words = 0;
    free_pool_words = 0;
    on_event = None;
  }

let ladder t = t.ladder
let set_on_event t f = t.on_event <- f

(* An lf is a plausible frame pointer iff it is quad-offset from heap_base
   and inside the heap; anything else maps to no live slot. *)
let live_index t ~lf =
  if lf < t.heap_base || lf > t.heap_limit || (lf - t.heap_base) land 3 <> 0 then -1
  else (lf - t.heap_base) lsr 2

let reset t =
  (* Mirror [create]: empty free lists, untouched wilderness, all counters
     zero.  Only slots the previous run could have carved need clearing. *)
  for i = 0 to Size_class.class_count t.ladder - 1 do
    Memory.poke t.mem (t.av_base + i) 0
  done;
  Array.fill t.live 0 (min (Array.length t.live) (((t.wilderness - t.heap_base) lsr 2) + 1)) (-1);
  t.live_blocks <- 0;
  t.wilderness <- t.heap_base;
  t.fast_allocs <- 0;
  t.frees <- 0;
  t.software_traps <- 0;
  t.live_words <- 0;
  t.peak_live_words <- 0;
  t.requested_words <- 0;
  t.free_pool_words <- 0

(* Carve one block of class [fsi] from the wilderness (software path;
   unmetered pokes — the trap's own references are folded into the
   software_alloc charge). *)
let carve t ~fsi =
  let words = Size_class.block_words t.ladder fsi in
  let block = t.wilderness in
  if block + words > t.heap_limit then raise Out_of_frame_heap;
  t.wilderness <- block + words;
  Memory.poke t.mem block fsi;
  block

let replenish t ~cost ~fsi =
  Cost.software_alloc cost;
  t.software_traps <- t.software_traps + 1;
  let words = Size_class.block_words t.ladder fsi in
  (* Batch small classes generously, rare big ones sparingly: the software
     allocator balances pool space against trap frequency. *)
  let batch = max 1 (min t.replenish_count (2048 / words)) in
  for _ = 1 to batch do
    let block = carve t ~fsi in
    let head = Memory.peek t.mem (t.av_base + fsi) in
    Memory.poke t.mem (block + 1) head;
    Memory.poke t.mem (t.av_base + fsi) block;
    t.free_pool_words <- t.free_pool_words + words
  done

let record_alloc t ~lf ~fsi ~requested =
  let words = Size_class.block_words t.ladder fsi in
  let idx = live_index t ~lf in
  if t.live.(idx) < 0 then t.live_blocks <- t.live_blocks + 1;
  t.live.(idx) <- (requested lsl 8) lor fsi;
  t.live_words <- t.live_words + words;
  if t.live_words > t.peak_live_words then t.peak_live_words <- t.live_words;
  t.requested_words <- t.requested_words + requested

(* The I1 general heap: every allocation and deallocation goes through the
   software allocator; no AV fast path exists.  Like any general-purpose
   allocator it reuses freed blocks before carving fresh ones — its list
   walking is folded into the [software_alloc] cost constant (raw
   accesses), so the charge is identical either way; only the heap's
   capacity behaviour differs (a long-running workload no longer exhausts
   the wilderness while most of it sits freed). *)
let alloc_software t ~cost ~fsi ~requested =
  Cost.software_alloc cost;
  t.software_traps <- t.software_traps + 1;
  let block =
    let head = Memory.peek t.mem (t.av_base + fsi) in
    if head = 0 then carve t ~fsi
    else begin
      Memory.poke t.mem (t.av_base + fsi) (Memory.peek t.mem (head + 1));
      t.free_pool_words <- t.free_pool_words - Size_class.block_words t.ladder fsi;
      head
    end
  in
  let lf = Frame.lf_of_block block in
  record_alloc t ~lf ~fsi ~requested;
  (match t.on_event with
  | Some f ->
    f
      (Fpc_trace.Event.Frame_alloc
         { words = Size_class.block_words t.ladder fsi; via_ff = false; software = true })
  | None -> ());
  lf

(* [trapped] records whether this allocation had to replenish its free
   list — that is, whether the fast path degraded to the software one. *)
let rec alloc_fast ?(trapped = false) t ~cost ~fsi ~requested =
  let head = Memory.read t.mem (t.av_base + fsi) in
  if head = 0 then begin
    replenish t ~cost ~fsi;
    alloc_fast ~trapped:true t ~cost ~fsi ~requested
  end
  else begin
    let next = Memory.read t.mem (head + 1) in
    Memory.write t.mem (t.av_base + fsi) next;
    t.fast_allocs <- t.fast_allocs + 1;
    t.free_pool_words <- t.free_pool_words - Size_class.block_words t.ladder fsi;
    let lf = Frame.lf_of_block head in
    record_alloc t ~lf ~fsi ~requested;
    (match t.on_event with
    | Some f ->
      f
        (Fpc_trace.Event.Frame_alloc
           {
             words = Size_class.block_words t.ladder fsi;
             via_ff = false;
             software = trapped;
           })
    | None -> ());
    lf
  end

let alloc_fsi_requested t ~cost ~fsi ~requested =
  if fsi < 0 || fsi >= Size_class.class_count t.ladder then
    invalid_arg (Printf.sprintf "Alloc_vector.alloc_fsi: bad class %d" fsi);
  match t.mode with
  | Fast -> alloc_fast t ~cost ~fsi ~requested
  | Software_only -> alloc_software t ~cost ~fsi ~requested

let alloc_fsi t ~cost ~fsi =
  alloc_fsi_requested t ~cost ~fsi ~requested:(Size_class.block_words t.ladder fsi)

(* Prepaid variants of the fast paths, for the compiled tier's
   specialised transfer nodes: the caller runs untraced and the storage
   bill is charged as one batch ({!Cost.refs_n}), so the free-list words
   are touched without per-access metering.  Counter totals equal the
   metered paths exactly.  Anything off the fast shape — software mode,
   an empty free list, a bad class or a dead block — falls back to the
   metered path unchanged (which also keeps the trap and abort behaviour
   literally the same code path). *)

let alloc_fsi_prepaid t ~cost ~fsi =
  if fsi < 0 || fsi >= Size_class.class_count t.ladder then
    invalid_arg (Printf.sprintf "Alloc_vector.alloc_fsi: bad class %d" fsi);
  match t.mode with
  | Software_only ->
    alloc_software t ~cost ~fsi ~requested:(Size_class.block_words t.ladder fsi)
  | Fast ->
    let head = Memory.peek t.mem (t.av_base + fsi) in
    if head = 0 then
      alloc_fast t ~cost ~fsi ~requested:(Size_class.block_words t.ladder fsi)
    else begin
      Cost.refs_n cost ~reads:2 ~writes:1;
      let next = Memory.peek t.mem (head + 1) in
      Memory.poke t.mem (t.av_base + fsi) next;
      t.fast_allocs <- t.fast_allocs + 1;
      let words = Size_class.block_words t.ladder fsi in
      t.free_pool_words <- t.free_pool_words - words;
      let lf = Frame.lf_of_block head in
      record_alloc t ~lf ~fsi ~requested:words;
      lf
    end

let fsi_for_locals t n =
  match Size_class.index_for_block t.ladder (Frame.block_words_for_locals n) with
  | Some fsi -> fsi
  | None ->
    invalid_arg
      (Printf.sprintf "Alloc_vector.fsi_for_locals: %d words exceed the ladder" n)

let alloc_words t ~cost ~body_words =
  let request = Frame.block_words_for_locals body_words in
  match Size_class.index_for_block t.ladder request with
  | None -> invalid_arg "Alloc_vector.alloc_words: request exceeds the ladder"
  | Some fsi -> alloc_fsi_requested t ~cost ~fsi ~requested:request

let free t ~cost ~lf =
  let idx = live_index t ~lf in
  let slot = if idx < 0 then -1 else t.live.(idx) in
  if slot < 0 then invalid_arg (Printf.sprintf "Alloc_vector.free: %d is not allocated" lf)
  else begin
    let fsi_known = slot land 0xFF in
    let requested = slot lsr 8 in
    t.live.(idx) <- -1;
    t.live_blocks <- t.live_blocks - 1;
    let block = Frame.block_of_lf lf in
    let words = Size_class.block_words t.ladder fsi_known in
    t.live_words <- t.live_words - words;
    t.requested_words <- t.requested_words - requested;
    t.frees <- t.frees + 1;
    (match t.mode with
    | Software_only ->
      (* The I1 heap frees through the software allocator too; the block is
         recycled onto the (never fast-read) free list for accounting. *)
      Cost.software_alloc cost;
      t.software_traps <- t.software_traps + 1;
      let head = Memory.peek t.mem (t.av_base + fsi_known) in
      Memory.poke t.mem (block + 1) head;
      Memory.poke t.mem (t.av_base + fsi_known) block
    | Fast ->
      let fsi = Frame.read_fsi t.mem ~lf in
      let head = Memory.read t.mem (t.av_base + fsi) in
      Memory.write t.mem (block + 1) head;
      Memory.write t.mem (t.av_base + fsi) block);
    t.free_pool_words <- t.free_pool_words + words;
    match t.on_event with
    | Some f -> f (Fpc_trace.Event.Frame_free { words; to_ff = false })
    | None -> ()
  end

let free_prepaid t ~cost ~lf =
  let idx = live_index t ~lf in
  let slot = if idx < 0 then -1 else t.live.(idx) in
  if slot < 0 || t.mode <> Fast then free t ~cost ~lf
  else begin
    let fsi_known = slot land 0xFF in
    let requested = slot lsr 8 in
    t.live.(idx) <- -1;
    t.live_blocks <- t.live_blocks - 1;
    let block = Frame.block_of_lf lf in
    let words = Size_class.block_words t.ladder fsi_known in
    t.live_words <- t.live_words - words;
    t.requested_words <- t.requested_words - requested;
    t.frees <- t.frees + 1;
    Cost.refs_n cost ~reads:2 ~writes:2;
    let fsi = Frame.peek_fsi t.mem ~lf in
    let head = Memory.peek t.mem (t.av_base + fsi) in
    Memory.poke t.mem (block + 1) head;
    Memory.poke t.mem (t.av_base + fsi) block;
    t.free_pool_words <- t.free_pool_words + words
  end

let is_live t ~lf =
  let idx = live_index t ~lf in
  idx >= 0 && t.live.(idx) >= 0

type stats = {
  fast_allocs : int;
  frees : int;
  software_traps : int;
  live_blocks : int;
  live_words : int;
  peak_live_words : int;
  requested_words : int;
  free_pool_words : int;
  wilderness_used : int;
}

let stats (t : t) =
  {
    fast_allocs = t.fast_allocs;
    frees = t.frees;
    software_traps = t.software_traps;
    live_blocks = t.live_blocks;
    live_words = t.live_words;
    peak_live_words = t.peak_live_words;
    requested_words = t.requested_words;
    free_pool_words = t.free_pool_words;
    wilderness_used = t.wilderness - t.heap_base;
  }

let internal_fragmentation (t : t) =
  if t.live_words = 0 then 0.0
  else 1.0 -. (float_of_int t.requested_words /. float_of_int t.live_words)

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let check_list fsi =
    let seen = Hashtbl.create 16 in
    let rec walk node =
      if node = 0 then Ok ()
      else if Hashtbl.mem seen node then Error (Printf.sprintf "cycle in class %d" fsi)
      else if node < t.heap_base || node >= t.wilderness then
        Error (Printf.sprintf "class %d: node %d outside carved heap" fsi node)
      else if Memory.peek t.mem node <> fsi then
        Error
          (Printf.sprintf "class %d: node %d has fsi %d" fsi node (Memory.peek t.mem node))
      else if is_live t ~lf:(Frame.lf_of_block node) then
        Error (Printf.sprintf "class %d: node %d is both free and live" fsi node)
      else begin
        Hashtbl.add seen node ();
        walk (Memory.peek t.mem (node + 1))
      end
    in
    walk (Memory.peek t.mem (t.av_base + fsi))
  in
  let rec all fsi =
    if fsi >= Size_class.class_count t.ladder then Ok ()
    else
      let* () = check_list fsi in
      all (fsi + 1)
  in
  all 0
