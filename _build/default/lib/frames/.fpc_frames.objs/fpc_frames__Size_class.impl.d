lib/frames/size_class.ml: Array List Printf
