(** Recursive-descent parser for mini-Mesa.

    {v
    program  ::= module*
    module   ::= MODULE ident ; (IMPORT ident (, ident)* ;)*
                 (global | procedure)* END ;
    global   ::= VAR ident : type (:= intlit)? ;
    procedure::= PROC ident ( params? ) (: type)? = stmt* END ;
    param    ::= VAR? ident : type
    stmt     ::= VAR ident : type (:= expr)? ;
               | ident := expr ;
               | IF expr THEN stmt* (ELSE stmt* )? END ;
               | WHILE expr DO stmt* END ;
               | RETURN expr? ;  | OUTPUT expr ;  | YIELD ;  | STOP ;
               | FORK callee ( args ) ;
               | TRANSFER ( expr (, expr)* ) ;
               | callee ( args ) ;
    expr     ::= OR-level with AND, NOT, comparisons (< <= = # >= >),
                 + -, * / MOD, unary -, and primaries:
                 intlit TRUE FALSE NIL RETCTX ident callee(args)
                 TRANSFER(...) @callee ( expr )
    v} *)

val parse : string -> (Ast.program, string) result

val parse_module : string -> (Ast.module_decl, string) result
(** Convenience for sources containing exactly one module. *)
