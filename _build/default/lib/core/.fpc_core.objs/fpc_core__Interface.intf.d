lib/core/interface.mli: Fpc_isa Fpc_mesa
