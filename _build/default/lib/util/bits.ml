let mask width =
  if width < 0 || width > 62 then invalid_arg "Bits.mask";
  (1 lsl width) - 1

let get ~word ~pos ~width = (word lsr pos) land mask width

let fits ~width v = v >= 0 && v land lnot (mask width) = 0

let set ~word ~pos ~width v =
  if not (fits ~width v) then
    invalid_arg
      (Printf.sprintf "Bits.set: value %d does not fit in %d bits" v width);
  word land lnot (mask width lsl pos) lor (v lsl pos)

let signed_of_unsigned ~width v =
  let v = v land mask width in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let unsigned_of_signed ~width v =
  let lo = -(1 lsl (width - 1)) and hi = (1 lsl (width - 1)) - 1 in
  if v < lo || v > hi then
    invalid_arg
      (Printf.sprintf "Bits.unsigned_of_signed: %d out of %d-bit range" v width);
  v land mask width

let word_mask = 0xFFFF
let to_word v = v land word_mask
let byte_high w = (w lsr 8) land 0xFF
let byte_low w = w land 0xFF
let word_of_bytes ~high ~low = ((high land 0xFF) lsl 8) lor (low land 0xFF)
