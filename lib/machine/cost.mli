(** The cycle-level cost model for the simulated Mesa-style processor.

    The paper's machines (Alto, Dorado) are microcoded processors we do not
    have; per the reproduction plan we substitute a cost-accounting
    simulation.  Every architectural event of interest — main-storage
    reference, register-bank reference, instruction dispatch, IFU-followed
    transfer — is charged here.  Experiments report ratios of these counts,
    so the defaults only need to respect the *relationships* the paper
    states (§7.3: a register bank reference is one cycle, a cache access
    two, main storage several). *)

type params = {
  mem_ref_cycles : int;  (** one main-storage word reference *)
  cache_hit_cycles : int;  (** data cache hit (§7.3 comparison) *)
  bank_ref_cycles : int;  (** register / register-bank reference *)
  dispatch_cycles : int;  (** per-instruction decode and dispatch *)
  jump_cycles : int;  (** taken jump the IFU can follow (§6 target speed) *)
  trap_cycles : int;  (** entering a software trap handler *)
  software_alloc_cycles : int;
      (** the software allocator invoked when an AV free list is empty
          (§5.3) or a frame is larger than the fast classes *)
}

val default_params : params
(** mem_ref 4, cache_hit 2, bank_ref 1, dispatch 1, jump 1, trap 50,
    software_alloc 100. *)

type t
(** A mutable bundle of counters charged against one execution. *)

val create : ?params:params -> unit -> t
val params : t -> params

(** {1 Charging} *)

val mem_read : t -> unit
val mem_write : t -> unit
val bank_ref : t -> unit
val dispatch : t -> unit

val bank_ref_n : t -> int -> unit
(** [n] bank references charged at once: totals equal [n] calls of
    {!bank_ref} exactly.  Pairs with {!Bank_file.raw_read}/[raw_write]
    the way {!refs_n} pairs with the prepaid storage accessors. *)

val dispatch_n : t -> int -> unit
(** [n] dispatches charged at once — what a fused superinstruction pays
    up front for the run of instructions it retires.  Totals equal [n]
    calls of {!dispatch} exactly. *)

val refs_n : t -> reads:int -> writes:int -> unit
(** Batched storage references: totals equal [reads] calls of {!mem_read}
    plus [writes] calls of {!mem_write} exactly.  Pairs with
    {!Memory.prepaid_read}/{!Memory.prepaid_write}: a compiled block whose
    addresses are guard-checked up front charges its whole storage bill
    here and then touches the store raw. *)

val block_bill : t -> instrs:int -> reads:int -> writes:int -> unit
(** [dispatch_n] and [refs_n] in one call — a compiled block's whole
    static bill. *)

val jump : t -> unit
val trap : t -> unit
val software_alloc : t -> unit
val add_cycles : t -> int -> unit

(** {1 Reading the meters} *)

val cycles : t -> int
val mem_reads : t -> int
val mem_writes : t -> int
val mem_refs : t -> int
(** [mem_reads + mem_writes]. *)

val bank_refs : t -> int
val dispatches : t -> int

val reset : t -> unit

type snapshot = {
  s_cycles : int;
  s_mem_reads : int;
  s_mem_writes : int;
  s_bank_refs : int;
  s_dispatches : int;
}

val snapshot : t -> snapshot

val delta : before:snapshot -> after:snapshot -> snapshot
(** Component-wise difference, for metering a region of execution. *)
