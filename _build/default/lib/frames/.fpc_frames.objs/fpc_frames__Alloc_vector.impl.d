lib/frames/alloc_vector.ml: Cost Fpc_machine Frame Hashtbl Memory Printf Result Size_class
