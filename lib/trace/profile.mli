(** Folding an event stream into a per-procedure cost profile.

    The profile answers the paper's question — where do the cycles and
    storage references of procedure-call machinery go? — for an arbitrary
    program.  It is streaming: attach {!record} as the sink listener and
    every event is folded as it is emitted, so the result is exact even
    when the sink's ring has wrapped.

    {b Conservation.}  Consecutive events partition the run: each event
    carries the cumulative meters after it plus the deltas its own
    operation was charged, so the stretch since the previous event splits
    into a {e span} (straight-line execution, attributed to the procedure
    on top of the shadow stack) and the {e operation} itself (attributed
    to the transfer's destination).  Nothing is counted twice and nothing
    is lost: after {!finish}, the sum of exclusive cycles over all rows
    equals the machine's cycle meter exactly, likewise storage references,
    and the call / return / other-transfer counts equal the interpreter's
    metrics.  The qcheck suite asserts this for random programs on every
    engine. *)

type row = {
  r_name : string;
  mutable r_calls : int;  (** entries into the procedure (calls + boot) *)
  mutable r_fast : int;  (** entries that completed with no storage reference *)
  mutable r_slow : int;
  mutable r_excl_cycles : int;
  mutable r_incl_cycles : int;  (** cycles with the procedure on the stack *)
  mutable r_excl_refs : int;
  mutable r_incl_refs : int;
}

type totals = {
  mutable t_cycles : int;
  mutable t_mem_refs : int;
  mutable t_calls : int;
  mutable t_returns : int;
  mutable t_other_xfers : int;
  mutable t_traps : int;
  mutable t_fast_transfers : int;  (** over call/return transfers, as the machine classifies *)
  mutable t_slow_transfers : int;
}

type fastpath = {
  mutable fp_rs_pushes : int;
  mutable fp_rs_hits : int;
  mutable fp_rs_flushes : int;
  mutable fp_rs_flushed_entries : int;
  mutable fp_rs_spills : int;
  mutable fp_bank_loads : int;
  mutable fp_bank_load_words : int;
  mutable fp_bank_spills : int;
  mutable fp_bank_spill_words : int;
  mutable fp_frame_allocs : int;
  mutable fp_ff_allocs : int;  (** served by the processor free-frame stack *)
  mutable fp_sw_allocs : int;  (** took the software-allocator path *)
  mutable fp_frame_frees : int;
  mutable fp_ff_frees : int;
}

type t

val create : procs:Procmap.t -> engine:string -> t

val record : t -> Event.t -> unit
(** Fold one event.  Events must arrive in emission order (attach this as
    the sink listener). *)

val finish : t -> cycles:int -> mem_refs:int -> t
(** Attribute the tail of the run (from the last event to the final meter
    readings) and close still-open stack frames.  Idempotent; returns [t]
    for chaining. *)

val totals : t -> totals
val fastpath : t -> fastpath

val rows : t -> row list
(** One row per procedure observed, plus synthetic ["(unknown)"] /
    ["(outside)"] rows when cost fell outside known procedures; sorted by
    exclusive cycles, descending. *)

val depth_hist : t -> Fpc_util.Histogram.t
(** Call depth observed at each call event. *)

val render : ?dropped:int -> t -> string
(** The profile as an aligned table with totals, fast-path counters and
    the depth histogram as notes.  [dropped] (from the sink) adds a
    ring-overflow warning note. *)

(** {1 Plain-data summaries} — for embedding in service results. *)

type proc_stat = {
  ps_name : string;
  ps_calls : int;
  ps_fast : int;
  ps_slow : int;
  ps_excl_cycles : int;
  ps_incl_cycles : int;
  ps_excl_refs : int;
  ps_incl_refs : int;
}

type summary = {
  s_engine : string;
  s_cycles : int;
  s_mem_refs : int;
  s_calls : int;
  s_returns : int;
  s_other_xfers : int;
  s_traps : int;
  s_fast_transfers : int;
  s_slow_transfers : int;
  s_events : int;  (** events folded into this profile *)
  s_procs : proc_stat list;  (** sorted by exclusive cycles, descending *)
  s_depth_max : int;
  s_depth_mean : float;
}

val summary : t -> summary
val summary_to_json : summary -> Fpc_util.Jsonout.t
