(** The frame-size ladder of §5.3.

    "Frame sizes increase from a minimum of about 16 bytes in steps of about
    20%; less than 20 steps are needed to cover any size up to several
    thousand bytes."  Sizes here are in 16-bit words and denote whole
    allocation blocks (one overhead word holding the frame-size index, three
    frame-overhead words, then locals); every block size is a multiple of
    four words so frames stay quad-aligned (§5.1) and context words can use
    their low bits as the tag.

    The ladder is shared knowledge of the compiler (which assigns each
    procedure its frame-size index) and the software allocator (which
    replenishes free lists); the fast allocator itself never consults sizes,
    exactly as the paper notes. *)

type t

val make : ?min_words:int -> ?growth:float -> ?max_words:int -> unit -> t
(** Defaults: [min_words = 8] (16 bytes), [growth = 1.2], [max_words = 2048]
    (4 KB).  Raises [Invalid_argument] on non-positive sizes or
    [growth <= 1]. *)

val default : t

val class_count : t -> int

val block_words : t -> int -> int
(** [block_words t fsi] is the block size of class [fsi] (0-based).  Raises
    [Invalid_argument] for an out-of-range index. *)

val index_for_block : t -> int -> int option
(** Smallest class whose block holds [words] words; [None] if even the
    largest class is too small. *)

val sizes : t -> int array
(** All block sizes, ascending. *)

val max_block_words : t -> int

val internal_waste : t -> block_request:int -> int
(** Words wasted when a [block_request]-word block is served by its class.
    Raises [Invalid_argument] if the request exceeds the ladder. *)
