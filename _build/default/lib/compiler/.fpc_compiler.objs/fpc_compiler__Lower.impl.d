lib/compiler/lower.ml: Fpc_lang List Printf String
