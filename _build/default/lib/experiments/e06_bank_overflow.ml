(** E6 — §7.1 and Figure 3: register-bank overflow/underflow rates.

    "Fragmentary Mesa statistics indicate that with 4 banks it happens on
    less than 5% of XFERs; and [Patterson] reports that with 4-8 banks the
    rate is less than 1%.  Intuitively, this means that long runs of calls
    nearly uninterrupted by returns, or vice versa, are quite rare."

    Three views: the rate vs bank count on synthetic traces and on the
    real compiled suite; the rate vs run-bias (manufacturing exactly the
    long runs the paper calls rare); and Figure 3's worked example of
    bank assignment. *)

open Fpc_util

let synthetic_table () =
  let trace = Fpc_workload.Synthetic.generate ~seed:7 ~length:120_000 () in
  let t =
    Tablefmt.create ~title:"Over/underflow rate vs bank count (synthetic trace)"
      ~columns:
        [
          ("banks", Tablefmt.Right);
          ("overflows", Tablefmt.Right);
          ("underflows", Tablefmt.Right);
          ("rate per XFER", Tablefmt.Right);
        ]
  in
  let rates = ref [] in
  List.iter
    (fun banks ->
      let r = Fpc_workload.Replay.replay_banks ~banks trace in
      rates := (banks, r.bk_rate) :: !rates;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int banks;
          Tablefmt.cell_int r.bk_stats.overflows;
          Tablefmt.cell_int r.bk_stats.underflows;
          Tablefmt.cell_pct r.bk_rate;
        ])
    [ 2; 3; 4; 6; 8; 12; 16 ];
  (t, !rates)

let runs_table () =
  let t =
    Tablefmt.create
      ~title:"Rate at 4 banks vs run bias (long call runs made common)"
      ~columns:[ ("run bias", Tablefmt.Right); ("rate per XFER", Tablefmt.Right) ]
  in
  List.iter
    (fun bias ->
      let profile = { Fpc_workload.Synthetic.default_profile with run_bias = bias } in
      let trace = Fpc_workload.Synthetic.generate ~seed:11 ~profile ~length:120_000 () in
      let r = Fpc_workload.Replay.replay_banks ~banks:4 trace in
      Tablefmt.add_row t
        [ Printf.sprintf "%.2f" bias; Tablefmt.cell_pct r.bk_rate ])
    [ 0.0; 0.3; 0.6; 0.9 ];
  Tablefmt.add_note t
    "the scheme works because real programs have low run bias \xE2\x80\x94 long \
     uninterrupted runs of calls or returns are rare";
  t

let programs_table () =
  let t =
    Tablefmt.create ~title:"Rate on the compiled suite (engine I4)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("banks", Tablefmt.Right);
          ("XFER events", Tablefmt.Right);
          ("rate per XFER", Tablefmt.Right);
        ]
  in
  let rate4 = ref [] in
  List.iter
    (fun program ->
      List.iter
        (fun banks ->
          let config =
            { Fpc_regbank.Bank_file.default_config with bank_count = banks }
          in
          let engine = Fpc_core.Engine.i4 ~bank_config:config () in
          let st = Harness.run_one ~engine ~program () in
          match st.Fpc_core.State.banks with
          | None -> ()
          | Some bf ->
            let s = Fpc_regbank.Bank_file.stats bf in
            let rate = Harness.ratio (s.overflows + s.underflows) s.xfers in
            if banks = 4 then rate4 := rate :: !rate4;
            Tablefmt.add_row t
              [
                program;
                Tablefmt.cell_int banks;
                Tablefmt.cell_int s.xfers;
                Tablefmt.cell_pct rate;
              ])
        [ 2; 4; 8 ])
    [ "fib"; "callchain"; "leafcalls"; "isort"; "mixed" ];
  let mean =
    match !rate4 with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  (t, mean)

(* The paper's intuition, measured: "long runs of calls nearly
   uninterrupted by returns, or vice versa, are quite rare."  Run lengths
   and call-depth locality over the compiled suite (engine I2), with the
   calibrated synthetic trace for comparison. *)
let locality_table () =
  let t =
    Tablefmt.create ~title:"Transfer locality: depth and same-direction runs"
      ~columns:
        [
          ("workload", Tablefmt.Left);
          ("depth p50", Tablefmt.Right);
          ("depth p95", Tablefmt.Right);
          ("depth max", Tablefmt.Right);
          ("run p95", Tablefmt.Right);
          ("run max", Tablefmt.Right);
          ("runs <= 4", Tablefmt.Right);
        ]
  in
  let add_row label depth_hist run_hist =
    if Histogram.count run_hist > 0 && Histogram.count depth_hist > 0 then
      Tablefmt.add_row t
        [
          label;
          Tablefmt.cell_int (Histogram.percentile depth_hist 50.0);
          Tablefmt.cell_int (Histogram.percentile depth_hist 95.0);
          Tablefmt.cell_int (Histogram.max_value depth_hist);
          Tablefmt.cell_int (Histogram.percentile run_hist 95.0);
          Tablefmt.cell_int (Histogram.max_value run_hist);
          Tablefmt.cell_pct (Histogram.fraction_le run_hist 4);
        ]
  in
  List.iter
    (fun program ->
      let st = Harness.run_one ~engine:Fpc_core.Engine.i2 ~program () in
      add_row program st.Fpc_core.State.depth_hist st.Fpc_core.State.run_hist)
    Fpc_workload.Programs.sequential;
  (* The synthetic trace, through the same statistics. *)
  let trace = Fpc_workload.Synthetic.generate ~seed:7 ~length:120_000 () in
  let run_hist = Histogram.create () in
  let dir = ref 0 and len = ref 0 in
  List.iter
    (fun (e : Fpc_workload.Synthetic.event) ->
      let d =
        match e with
        | Fpc_workload.Synthetic.Call _ -> 1
        | Fpc_workload.Synthetic.Return -> -1
        | _ -> 0
      in
      if d <> 0 then
        if d = !dir then incr len
        else begin
          if !len > 0 then Histogram.add run_hist !len;
          dir := d;
          len := 1
        end)
    trace;
  add_row "synthetic (calibrated)" (Fpc_workload.Synthetic.depth_profile trace) run_hist;
  Tablefmt.add_note t
    "section 7.1's claim quantified: nearly all same-direction runs fit the bank window";
  t

(* Figure 3: the paper's worked sequence of bank assignments. *)
let figure () =
  let open Fpc_machine in
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 16) () in
  let ladder = Fpc_frames.Size_class.default in
  let config = { Fpc_regbank.Bank_file.default_config with bank_count = 4 } in
  let bf = Fpc_regbank.Bank_file.create ~config ~mem ~cost ~ladder () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== Figure 3: assignment of register banks ==\n";
  let bump = ref 4096 in
  let frames = Hashtbl.create 8 in
  let new_frame name =
    let block = !bump in
    bump := !bump + 16;
    Memory.poke mem block 2;
    let lf = Fpc_frames.Frame.lf_of_block block in
    Hashtbl.replace frames lf name;
    lf
  in
  let stack = ref [ new_frame "X" ] in
  Fpc_regbank.Bank_file.ensure_bank bf ~lf:(List.hd !stack);
  let show step =
    Buffer.add_string buf (Printf.sprintf "%-10s |" step);
    for id = 0 to 3 do
      let owner =
        Hashtbl.fold
          (fun lf name acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if Fpc_regbank.Bank_file.bank_id bf ~lf = Some id then Some name
              else None)
          frames None
      in
      let cell = match owner with Some n -> "L=F" ^ n | None -> "-" in
      Buffer.add_string buf (Printf.sprintf " bank%d:%-5s" id cell)
    done;
    Buffer.add_char buf '\n'
  in
  show "begin X";
  let call name =
    let lf = new_frame name in
    Fpc_regbank.Bank_file.on_call bf ~callee_lf:lf ~payload_words:8 ~args:[||];
    stack := lf :: !stack;
    show ("call " ^ name)
  in
  let return () =
    match !stack with
    | top :: (next :: _ as rest) ->
      Fpc_regbank.Bank_file.release_frame bf ~lf:top;
      Hashtbl.remove frames top;
      stack := rest;
      Fpc_regbank.Bank_file.ensure_bank bf ~lf:next;
      show "return"
    | _ -> ()
  in
  call "A";
  return ();
  call "B";
  call "C";
  return ();
  call "D";
  return ();
  Buffer.add_string buf
    "(one bank always holds the evaluation stack; on each call it is \
     renamed to the callee's local bank, matching the paper's diagram)\n";
  Buffer.contents buf

let run () =
  let t1, rates = synthetic_table () in
  let t2 = runs_table () in
  let t3, program_rate4 = programs_table () in
  let t4 = locality_table () in
  {
    Exp.id = "E6";
    key = "bank_overflow";
    title = "Figure 3 and bank over/underflow rates";
    paper_claim =
      "<5% of XFERs over/underflow with 4 banks; <1% with 4-8 banks \
       (\xC2\xA77.1)";
    tables =
      [
        Tablefmt.render t1; Tablefmt.render t2; Tablefmt.render t3;
        Tablefmt.render t4; figure ();
      ];
    headlines =
      [
        ("synthetic_rate_4_banks", List.assoc 4 rates);
        ("synthetic_rate_8_banks", List.assoc 8 rates);
        ("program_mean_rate_4_banks", program_rate4);
      ];
  }
