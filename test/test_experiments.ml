(* The reproduction gate: every experiment runs, and its headline numbers
   land within the bands the paper's claims define.  This suite is the
   machine-checked version of EXPERIMENTS.md. *)

let results =
  lazy
    (List.map (fun (key, f) -> (key, f ())) Fpc_experiments.Registry.all)

let get key = List.assoc key (Lazy.force results)

let check_band ~what ~lo ~hi value =
  if value < lo || value > hi then
    Alcotest.failf "%s = %.4f outside [%.4f, %.4f]" what value lo hi

let headline key name = Fpc_experiments.Exp.headline (get key) name

let test_all_render () =
  List.iter
    (fun (key, r) ->
      let s = Fpc_experiments.Exp.render r in
      if String.length s < 100 then Alcotest.failf "%s: suspiciously short output" key;
      if r.Fpc_experiments.Exp.headlines = [] then
        Alcotest.failf "%s: no headlines" key)
    (Lazy.force results)

(* E1: >= 95% of typical call/returns at jump speed under I4; none under
   I1/I2 (every call touches storage there). *)
let test_e1 () =
  check_band ~what:"I4 typical fast fraction" ~lo:0.95 ~hi:1.0
    (headline "fastpath" "fast_fraction_I4_typical");
  check_band ~what:"I2 fast fraction" ~lo:0.0 ~hi:0.0
    (headline "fastpath" "fast_fraction_I2_typical")

(* E2: the paper's worked example saves about one-third. *)
let test_e2 () =
  check_band ~what:"(3,10,32) saving" ~lo:0.33 ~hi:0.37
    (headline "indirection_space" "paper_example_saved_fraction");
  check_band ~what:"I1 tables wider than I2" ~lo:1.05 ~hi:3.0
    (headline "indirection_space" "measured_i1_over_i2_table_words")

(* E3: the chain shortens monotonically: external > local > direct-IFU >
   banked-direct (which is within rounding of zero). *)
let test_e3 () =
  let ext = headline "indirection_chain" "i2_external_refs_per_call" in
  let local = headline "indirection_chain" "i2_local_refs_per_call" in
  let i3 = headline "indirection_chain" "i3_direct_refs_per_call" in
  let i4 = headline "indirection_chain" "i4_direct_refs_per_call" in
  if not (ext > local && local > i3 && i3 > i4) then
    Alcotest.failf "chain not monotone: %.1f %.1f %.1f %.3f" ext local i3 i4;
  check_band ~what:"I4 refs/call" ~lo:0.0 ~hi:0.05 i4

(* E4: 3 refs to allocate, 4 to free, ~10% fragmentation, <=20 classes at
   ~35% growth. *)
let test_e4 () =
  check_band ~what:"refs/alloc" ~lo:3.0 ~hi:3.1 (headline "frame_alloc" "refs_per_alloc");
  check_band ~what:"refs/free" ~lo:4.0 ~hi:4.0 (headline "frame_alloc" "refs_per_free");
  check_band ~what:"fragmentation" ~lo:0.03 ~hi:0.15
    (headline "frame_alloc" "fragmentation_at_1.2");
  check_band ~what:"classes" ~lo:1.0 ~hi:20.0 (headline "frame_alloc" "classes_at_1.35")

(* E5: +30% for one DFC site; SDFC parity at one site, +50% at two. *)
let test_e5 () =
  check_band ~what:"dfc 1 site" ~lo:1.30 ~hi:1.37
    (headline "directcall_space" "dfc_ratio_1_site");
  check_band ~what:"sdfc 1 site" ~lo:1.0 ~hi:1.0
    (headline "directcall_space" "sdfc_ratio_1_site");
  check_band ~what:"sdfc 2 sites" ~lo:1.5 ~hi:1.5
    (headline "directcall_space" "sdfc_ratio_2_sites")

(* E6: rare over/underflow at 4 banks, <1% at 8 (one of the four is the
   stack bank, so our 4-bank point runs a little above the paper's). *)
let test_e6 () =
  check_band ~what:"4 banks" ~lo:0.0 ~hi:0.12
    (headline "bank_overflow" "synthetic_rate_4_banks");
  check_band ~what:"8 banks" ~lo:0.0 ~hi:0.01
    (headline "bank_overflow" "synthetic_rate_8_banks")

(* E7: 95% of frames below 80 bytes; effective allocation ~0.8x fast. *)
let test_e7 () =
  check_band ~what:"<=80B fraction" ~lo:0.93 ~hi:0.97
    (headline "frame_sizes" "fraction_le_80_bytes");
  check_band ~what:"effective speed" ~lo:0.6 ~hi:1.0
    (headline "frame_sizes" "effective_alloc_speed")

(* E8: renaming moves zero words. *)
let test_e8 () =
  check_band ~what:"I4 moved/call" ~lo:0.0 ~hi:0.0
    (headline "arg_passing" "i4_arg_words_moved_per_call");
  check_band ~what:"I2 stores words" ~lo:0.5 ~hi:5.0
    (headline "arg_passing" "i2_arg_words_per_call")

(* E9: half or more of data references are to locals; banks win. *)
let test_e9 () =
  check_band ~what:"local share" ~lo:0.5 ~hi:1.0
    (headline "bank_vs_cache" "mean_local_share");
  check_band ~what:"speedup" ~lo:1.2 ~hi:10.0 (headline "bank_vs_cache" "mean_speedup")

(* E10: one call or return per ~10 instructions. *)
let test_e10 () =
  check_band ~what:"instr/transfer" ~lo:6.0 ~hi:18.0
    (headline "call_density" "instructions_per_transfer")

(* E11: heavy coroutine traffic degrades the fast path but never breaks
   anything; LIFO reservation exceeds the heap's need. *)
let test_e11 () =
  check_band ~what:"engines agree" ~lo:1.0 ~hi:1.0 (headline "nonlifo" "engines_agree");
  check_band ~what:"no-coroutine fast fraction" ~lo:0.85 ~hi:1.0
    (headline "nonlifo" "fast_fraction_no_coroutines");
  let lifo = headline "nonlifo" "lifo_over_heap_8_activities" in
  check_band ~what:"LIFO over heap" ~lo:1.2 ~hi:100.0 lifo

(* E12: both policies preserve behaviour; diversion is the cheaper one. *)
let test_e12 () =
  check_band ~what:"outputs agree" ~lo:1.0 ~hi:1.0 (headline "ptr_locals" "outputs_agree");
  let flagged = headline "ptr_locals" "flagged_overhead" in
  let divert = headline "ptr_locals" "divert_overhead" in
  if divert >= flagged then
    Alcotest.failf "diversion (%.2f) should beat flagged flushing (%.2f)" divert flagged

(* E13: everything in an Alto-sized image is within short reach. *)
let test_e13 () =
  check_band ~what:"short fraction" ~lo:1.0 ~hi:1.0
    (headline "short_reach" "measured_short_fraction")

(* E14: zero behavioural differences anywhere. *)
let test_e14 () =
  check_band ~what:"program mismatches" ~lo:0.0 ~hi:0.0
    (headline "equivalence" "program_mismatches");
  check_band ~what:"relocation failures" ~lo:0.0 ~hi:0.0
    (headline "equivalence" "relocation_failures");
  check_band ~what:"instances ok" ~lo:1.0 ~hi:1.0 (headline "equivalence" "instances_ok")

(* E16: the compiled tier is bit-identical and most instructions fuse.
   Speedup is host wall clock — asserted positive, not banded, so a noisy
   CI machine cannot fail the gate. *)
let test_e16 () =
  check_band ~what:"tier mismatches" ~lo:0.0 ~hi:0.0 (headline "tier" "mismatches");
  check_band ~what:"fusion coverage %" ~lo:50.0 ~hi:100.0
    (headline "tier" "fusion_coverage_pct");
  check_band ~what:"I2 speedup > 0" ~lo:0.000001 ~hi:1000.0
    (headline "tier" "speedup_i2")

(* E17: byte-identical outputs and meters across engines, tiers and
   policies; the frame heap needs a fraction of the LIFO per-session
   reservation; preemption makes the banked engines flush the return
   stack, but only a few times per hundred transfers. *)
let test_e17 () =
  check_band ~what:"output mismatches" ~lo:0.0 ~hi:0.0
    (headline "sessions" "output_mismatches");
  check_band ~what:"meter mismatches" ~lo:0.0 ~hi:0.0
    (headline "sessions" "meter_mismatches");
  check_band ~what:"I2 footprint ratio" ~lo:0.05 ~hi:0.6
    (headline "sessions" "footprint_ratio_i2_10k");
  check_band ~what:"I1 footprint ratio" ~lo:0.05 ~hi:0.6
    (headline "sessions" "footprint_ratio_i1_10k");
  check_band ~what:"I4 preempt flush rate" ~lo:0.001 ~hi:0.5
    (headline "sessions" "i4_rs_flush_per_xfer_preempt")

(* E18: fusing through leaf calls changes nothing observable — on the
   suite, on call-dense synthetic programs, and across forced mid-run
   relinks — while the fused sites cover essentially every call on the
   call-dense kernels.  Speedup is host wall clock, asserted positive
   like E16's. *)
let test_e18 () =
  check_band ~what:"fused-call mismatches" ~lo:0.0 ~hi:0.0
    (headline "calls" "mismatches");
  check_band ~what:"fused-call coverage %" ~lo:80.0 ~hi:100.0
    (headline "calls" "fused_call_coverage_pct");
  check_band ~what:"warm lazy translations" ~lo:0.0 ~hi:0.0
    (headline "calls" "lazy_warm_translations");
  check_band ~what:"I2 speedup > 0" ~lo:0.000001 ~hi:1000.0
    (headline "calls" "speedup_i2")

(* E19: devirtualization changes no output and keeps both tiers
   bit-identical, while the cross-module kernels retire essentially no
   late-bound calls and the storage-reference meter drops. *)
let test_e19 () =
  check_band ~what:"devirt mismatches" ~lo:0.0 ~hi:0.0
    (headline "devirt" "mismatches");
  check_band ~what:"dynamic devirtualization %" ~lo:80.0 ~hi:100.0
    (headline "devirt" "devirt_dynamic_pct");
  check_band ~what:"refs saved %" ~lo:0.5 ~hi:50.0
    (headline "devirt" "refs_saved_pct");
  check_band ~what:"sites rewritten %" ~lo:80.0 ~hi:100.0
    (headline "devirt" "sites_rewritten_pct")

let () =
  let case name f = Alcotest.test_case name `Slow f in
  Alcotest.run "experiments"
    [
      ( "reproduction",
        [
          case "all experiments render" test_all_render;
          case "E1 jump-speed calls" test_e1;
          case "E2 indirection space" test_e2;
          case "E3 indirection chain" test_e3;
          case "E4 frame allocator" test_e4;
          case "E5 directcall space" test_e5;
          case "E6 bank overflow" test_e6;
          case "E7 frame sizes" test_e7;
          case "E8 argument passing" test_e8;
          case "E9 bank vs cache" test_e9;
          case "E10 call density" test_e10;
          case "E11 non-LIFO" test_e11;
          case "E12 pointers to locals" test_e12;
          case "E13 short reach" test_e13;
          case "E14 equivalence" test_e14;
          case "E16 compiled tier" test_e16;
          case "E17 session scheduler" test_e17;
          case "E18 cross-call fusion" test_e18;
          case "E19 link-time devirtualization" test_e19;
        ] );
    ]
