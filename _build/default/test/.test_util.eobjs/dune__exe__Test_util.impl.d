test/test_util.ml: Alcotest Array Bits Fpc_util Fun Gen Hashtbl Histogram List Option Prng QCheck QCheck_alcotest String Tablefmt
