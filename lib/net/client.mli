(** A minimal blocking client for the line protocol — what the tests and
    {!Loadgen} speak; not a public SDK.  One TCP connection, send request
    lines, read response lines. *)

type t

val connect : ?max_line:int -> ?rcvbuf:int -> host:string -> port:int -> unit -> t
(** Raises [Unix.Unix_error] if the connection is refused.  [rcvbuf]
    (a test hook) sets SO_RCVBUF before connecting, so a deliberately
    tiny client window can force the server into partial writes. *)

val send_line : t -> string -> unit
(** Write one request line (the newline is added here). *)

val recv : t -> Framing.item
(** Next response line (or [Overlong]/[Eof]), via the same {!Framing}
    the server uses. *)

val recv_line : t -> string option
(** [recv] restricted to lines: skips [Overlong] items, [None] at EOF. *)

val shutdown_send : t -> unit
(** Half-close: no more requests, but keep reading responses — how a
    client drains its in-flight jobs before {!close}. *)

val close : t -> unit
