(* The fpc command-line tool: compile, run, disassemble and measure
   mini-Mesa programs on the Fast Procedure Calls machine. *)

open Cmdliner

let read_source path_or_name =
  if Sys.file_exists path_or_name then
    let ic = open_in_bin path_or_name in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  else
    match Fpc_workload.Programs.find path_or_name with
    | src -> src
    | exception Not_found ->
      failwith
        (Printf.sprintf
           "%s: not a file and not a suite program (suite: %s)" path_or_name
           (String.concat ", " Fpc_workload.Programs.names))

let engine_of_string = function
  | "i1" | "I1" -> Fpc_core.Engine.i1
  | "i2" | "I2" -> Fpc_core.Engine.i2
  | "i3" | "I3" -> Fpc_core.Engine.i3 ()
  | "i4" | "I4" -> Fpc_core.Engine.i4 ()
  | s -> failwith (Printf.sprintf "unknown engine %s (use i1, i2, i3 or i4)" s)

let engine_arg =
  Arg.(value & opt string "i2" & info [ "e"; "engine" ] ~docv:"ENGINE"
         ~doc:"Transfer engine: i1 (simple), i2 (Mesa), i3 (+IFU return \
               stack), i4 (+register banks).")

let tier_of_string s =
  match Fpc_svc.Job.tier_of_name s with
  | Ok t -> t
  | Error m -> failwith m

let tier_arg =
  Arg.(value & opt string "auto" & info [ "tier" ] ~docv:"TIER"
         ~doc:"Execution tier: interp (the dispatch-loop interpreter), \
               compiled (threaded code; every simulated meter is \
               bit-identical), or auto (compiled except under a tracer).")

let source_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE"
         ~doc:"A mini-Mesa source file, or the name of a built-in suite \
               program (e.g. fib, coroutine).")

let devirt_arg =
  Arg.(value & opt bool true & info [ "devirt" ] ~docv:"BOOL"
         ~doc:"Run the link-time devirtualization pass (rewrite provably \
               single-target external calls to DIRECTCALL).  On by \
               default; outputs never change, only the meters.  \
               $(b,--devirt=false) keeps the late-bound baseline.")

let handle f = try `Ok (f ()) with Failure m | Invalid_argument m -> `Error (false, m)

(* ---- run ---- *)

let run_cmd =
  let action source engine_name tier_name devirt steps stats =
    handle (fun () ->
        let engine = engine_of_string engine_name in
        let tier = tier_of_string tier_name in
        let convention = Fpc_compiler.Convention.for_engine engine in
        let src = read_source source in
        let image =
          match Fpc_compiler.Compile.image ~convention ~devirt src with
          | Ok i -> i
          | Error m -> failwith m
        in
        let st =
          Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
            ~args:[] ()
        in
        (match tier with
        | Fpc_svc.Job.Interp -> Fpc_interp.Interp.run ~max_steps:steps st
        | Fpc_svc.Job.Compiled | Fpc_svc.Job.Auto ->
          let tr, _hit = Fpc_tier.Tier.of_image image in
          Fpc_tier.Tier.run ~max_steps:steps tr st);
        let o = Fpc_interp.Interp.outcome st in
        List.iter (fun v -> Printf.printf "%d\n" v) o.o_output;
        (match o.o_status with
        | Fpc_core.State.Halted -> ()
        | Fpc_core.State.Running -> failwith "still running"
        | Fpc_core.State.Trapped r ->
          failwith ("trapped: " ^ Fpc_core.State.trap_reason_to_string r));
        (* What the pass did, but only for images that had any late-bound
           sites at all — single-module programs keep their historical
           stderr shape. *)
        (match image.Fpc_mesa.Image.dir.Fpc_mesa.Image.devirt with
        | Some d when d.Fpc_mesa.Image.dv_sites > 0 ->
          Printf.eprintf
            "devirt: sites=%d proven=%d rewritten=%d short=%d abstained=%d\n"
            d.Fpc_mesa.Image.dv_sites d.dv_proven d.dv_rewritten d.dv_short
            d.dv_abstained
        | _ -> ());
        if stats then prerr_string (Fpc_interp.Report.render st)
        else
          Printf.eprintf "engine=%s instructions=%d cycles=%d storage-refs=%d\n"
            engine_name o.o_instructions o.o_cycles o.o_mem_refs)
  in
  let steps =
    Arg.(value & opt int 20_000_000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Step limit before the run is abandoned.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the full machine-statistics table (to stderr).")
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute Main.main, printing OUTPUT words.")
    Term.(ret (const action $ source_arg $ engine_arg $ tier_arg $ devirt_arg
               $ steps $ stats))

(* ---- disasm ---- *)

let disasm_cmd =
  let action source =
    handle (fun () ->
        let src = read_source source in
        match Fpc_compiler.Compile.modules src with
        | Error m -> failwith m
        | Ok modules ->
          List.iter
            (fun (m : Fpc_mesa.Compiled.t) ->
              Printf.printf "MODULE %s (globals %d words, %d imports)\n"
                m.m_name m.m_globals_words (Array.length m.m_imports);
              Array.iteri
                (fun i (tm, tp) -> Printf.printf "  LV[%d] = %s.%s\n" i tm tp)
                m.m_imports;
              List.iter
                (fun (p : Fpc_mesa.Compiled.proc) ->
                  Printf.printf "PROC %s (args %d, frame payload %d words, \
                                 %d bytes)\n%s\n"
                    p.p_name p.p_nargs p.p_locals_words (Bytes.length p.p_body)
                    (Fpc_isa.Disasm.of_bytes p.p_body))
                m.m_procs)
            modules)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Compile and print the byte-code listing.")
    Term.(ret (const action $ source_arg))

(* ---- trace ---- *)

let trace_cmd =
  let action source engine_name steps =
    handle (fun () ->
        let engine = engine_of_string engine_name in
        let convention = Fpc_compiler.Convention.for_engine engine in
        let src = read_source source in
        let image =
          match Fpc_compiler.Compile.image ~convention src with
          | Ok i -> i
          | Error m -> failwith m
        in
        (* A tiny sink whose listener prints the architectural events
           interleaved with the instruction listing; the noisy per-call
           sub-events are elided. *)
        let sink = Fpc_trace.Sink.create ~capacity:1 ~engine:engine_name () in
        Fpc_trace.Sink.set_listener sink
          (Some
             (fun (e : Fpc_trace.Event.t) ->
               match e.kind with
               | Fpc_trace.Event.Rs_push | Fpc_trace.Event.Rs_hit
               | Fpc_trace.Event.Frame_alloc _ | Fpc_trace.Event.Frame_free _
                 ->
                 ()
               | _ -> Printf.printf "      * %s\n" (Fpc_trace.Event.to_string e)));
        let st =
          Fpc_interp.Interp.boot ~tracer:sink ~image ~engine ~instance:"Main"
            ~proc:"main" ~args:[] ()
        in
        Printf.printf "%6s %7s %6s %5s %5s  %s\n" "step" "pc" "LF" "GF" "stk"
          "instruction";
        let n = ref 0 in
        Fpc_interp.Interp.run_traced ~max_steps:steps st
          ~on_step:(fun ~pc_abs op (s : Fpc_core.State.t) ->
            incr n;
            Printf.printf "%6d %7d %6d %5d %5d  %s\n" !n pc_abs s.lf s.gf
              (Fpc_core.Eval_stack.depth s.stack)
              (Fpc_isa.Opcode.to_string op));
        (match st.Fpc_core.State.status with
        | Fpc_core.State.Running ->
          Printf.printf "... stopped after %d steps (still running)\n" steps
        | Fpc_core.State.Halted -> Printf.printf "halted\n"
        | Fpc_core.State.Trapped r ->
          Printf.printf "trapped: %s\n" (Fpc_core.State.trap_reason_to_string r));
        match Fpc_core.State.output st with
        | [] -> ()
        | out ->
          Printf.printf "output: %s\n"
            (String.concat " " (List.map string_of_int out)))
  in
  let steps =
    Arg.(value & opt int 200 & info [ "n"; "steps" ] ~docv:"N"
           ~doc:"Maximum instructions to trace.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Execute Main.main printing every instruction with the machine \
             registers (LF, GF, stack depth).")
    Term.(ret (const action $ source_arg $ engine_arg $ steps))

(* ---- profile ---- *)

let profile_cmd =
  let action source engine_name steps capacity chrome_out folded_out =
    handle (fun () ->
        let engine = engine_of_string engine_name in
        let convention = Fpc_compiler.Convention.for_engine engine in
        let src = read_source source in
        let image =
          match Fpc_compiler.Compile.image ~convention src with
          | Ok i -> i
          | Error m -> failwith m
        in
        let p = Fpc_interp.Profiler.create ~capacity ~image ~engine () in
        let _st, o =
          Fpc_interp.Profiler.run ~max_steps:steps p ~image ~engine
            ~instance:"Main" ~proc:"main" ~args:[]
        in
        print_string (Fpc_interp.Profiler.render p);
        (match chrome_out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Fpc_util.Jsonout.to_string
               (Fpc_interp.Profiler.chrome ~final_cycles:o.o_cycles p));
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "wrote Chrome trace-event JSON to %s\n" path);
        (match folded_out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Fpc_interp.Profiler.folded ~final_cycles:o.o_cycles p);
          close_out oc;
          Printf.eprintf "wrote folded flamegraph stacks to %s\n" path);
        match o.o_status with
        | Fpc_core.State.Halted -> ()
        | Fpc_core.State.Running -> failwith "still running (raise --max-steps)"
        | Fpc_core.State.Trapped r ->
          failwith ("trapped: " ^ Fpc_core.State.trap_reason_to_string r))
  in
  let steps =
    Arg.(value & opt int 20_000_000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Step limit before the run is abandoned.")
  in
  let capacity =
    Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"N"
           ~doc:"Event ring capacity for the exports; the profile table \
                 itself streams and never drops.")
  in
  let chrome_out =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Also write a Chrome trace-event JSON file (load it in \
                 chrome://tracing or Perfetto).")
  in
  let folded_out =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"Also write collapsed flamegraph stacks (feed to \
                 flamegraph.pl).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Execute Main.main under the XFER tracer and print the \
             per-procedure cost profile; cycle and storage-reference \
             totals match the run's meters exactly.")
    Term.(
      ret
        (const action $ source_arg $ engine_arg $ steps $ capacity
        $ chrome_out $ folded_out))

(* ---- image ---- *)

let image_cmd =
  let action source linkage_name =
    handle (fun () ->
        let convention =
          match linkage_name with
          | "external" -> Fpc_compiler.Convention.external_
          | "direct" -> Fpc_compiler.Convention.direct
          | "short" -> Fpc_compiler.Convention.short_direct
          | s -> failwith (Printf.sprintf "unknown linkage %s" s)
        in
        let src = read_source source in
        let image =
          match Fpc_compiler.Compile.image ~convention src with
          | Ok i -> i
          | Error m -> failwith m
        in
        let open Fpc_mesa in
        let l = image.Image.layout in
        Printf.printf "memory map (%d words):\n" l.Layout.memory_words;
        Printf.printf "  %6d..%6d  reserved (trap handler word at %d)\n" 0 15
          l.trap_handler_addr;
        Printf.printf "  %6d..%6d  global frame table (%d entries used)\n"
          l.gft_base (l.av_base - 1) (image.Image.dir.Image.gfi_cursor - 1);
        Printf.printf "  %6d..%6d  allocation vector\n" l.av_base (l.static_base - 1);
        Printf.printf "  %6d..%6d  static (global frames, link vectors); used to %d\n"
          l.static_base (l.heap_base - 1) image.static_cursor;
        Printf.printf "  %6d..%6d  frame heap\n" l.heap_base (l.heap_limit - 1);
        Printf.printf "  %6d..%6d  code; used to %d\n" l.code_region_base
          (l.memory_words - 1) image.Image.dir.Image.code_cursor;
        Printf.printf "\ninstances:\n";
        List.iter
          (fun (ii : Image.instance_info) ->
            Printf.printf
              "  %-12s gfi=%d..%d  GF@%d  LV@%d (%d imports)  code base %d\n"
              ii.ii_name ii.ii_gfi
              (ii.ii_gfi + ii.ii_gfi_count - 1)
              ii.ii_gf_addr ii.ii_lv_base
              (Array.length ii.ii_imports)
              ii.ii_code_base;
            Array.iteri
              (fun i (tm, tp) ->
                let word =
                  Fpc_machine.Memory.peek image.mem (ii.ii_gf_addr - 1 - i)
                in
                Printf.printf "      LV[%d] = %s.%s  (0x%04X %s)\n" i tm tp word
                  (Descriptor.to_string (Descriptor.unpack word)))
              ii.ii_imports)
          image.Image.dir.Image.instances;
        Printf.printf "\nprocedures:\n";
        Hashtbl.iter
          (fun (inst, proc) (pi : Image.proc_info) ->
            Printf.printf
              "  %-12s.%-10s ev=%-3d entry@%-5d fsi=%-2d payload=%-3d body=%dB%s\n"
              inst proc pi.pi_ev pi.pi_entry_offset pi.pi_fsi pi.pi_locals_words
              pi.pi_body_bytes
              (match pi.pi_direct_offset with
              | Some off -> Printf.sprintf "  direct-header@%d" off
              | None -> ""))
          image.Image.dir.Image.procs;
        print_newline ();
        print_string (Space.render ~title:"space report" (Space.measure image)))
  in
  let linkage =
    Arg.(value & opt string "external" & info [ "l"; "linkage" ] ~docv:"LINKAGE"
           ~doc:"external, direct or short.")
  in
  Cmd.v
    (Cmd.info "image"
       ~doc:"Compile and link, then dump the memory map, tables and space \
             report of the resulting image.")
    Term.(ret (const action $ source_arg $ linkage))

(* ---- experiment ---- *)

let experiment_cmd =
  let action name =
    handle (fun () ->
        match name with
        | None ->
          List.iter
            (fun (key, f) ->
              print_string (Fpc_experiments.Exp.render (f ()));
              print_newline ();
              ignore key)
            Fpc_experiments.Registry.all
        | Some name -> (
          match Fpc_experiments.Registry.find name with
          | Some f -> print_string (Fpc_experiments.Exp.render (f ()))
          | None ->
            failwith
              (Printf.sprintf "unknown experiment %s (known: %s)" name
                 (String.concat ", " Fpc_experiments.Registry.keys))))
  in
  let exp_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Experiment key (fastpath, bank_overflow, ...) or id \
                 (E1..E18).  Omit to run all.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Reproduce a paper table/figure (or all of them).")
    Term.(ret (const action $ exp_name))

(* ---- suite ---- *)

let suite_cmd =
  let action () =
    handle (fun () ->
        List.iter
          (fun name -> Printf.printf "%s\n" name)
          Fpc_workload.Programs.names)
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the built-in benchmark programs.")
    Term.(ret (const action $ const ()))

(* ---- batch ---- *)

let domains_arg =
  Arg.(value & opt int 0 & info [ "j"; "domains" ] ~docv:"N"
         ~doc:"Worker domains in the pool; 0 (the default) picks the \
               host's recommended domain count.")

let resolve_domains n = if n <= 0 then Fpc_svc.Pool.recommended_domains () else n

let suite_specs ~engines ~tier ~fuel =
  List.concat_map
    (fun name ->
      List.map
        (fun engine ->
          Fpc_svc.Job.spec ~engine ~tier ~fuel (Fpc_svc.Job.Suite name))
        engines)
    Fpc_workload.Programs.names

(* The command-line tier is the default for requests that left the tier
   to the service; an explicit tier= in the jobfile line wins.  Same
   story for --devirt and devirt=. *)
let apply_tier_default tier (spec : Fpc_svc.Job.spec) =
  match spec.tier with
  | Fpc_svc.Job.Auto -> { spec with Fpc_svc.Job.tier }
  | _ -> spec

let apply_devirt_default devirt (spec : Fpc_svc.Job.spec) =
  match spec.devirt with
  | None -> { spec with Fpc_svc.Job.devirt = Some devirt }
  | Some _ -> spec

let read_jobfile path =
  let ic = open_in path in
  let specs = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed <> "" && trimmed.[0] <> '#' then
         match Fpc_svc.Job.parse_request trimmed with
         | Ok spec -> specs := spec :: !specs
         | Error m ->
           close_in ic;
           failwith (Printf.sprintf "%s:%d: %s" path !lineno m)
     done
   with End_of_file -> close_in ic);
  List.rev !specs

let batch_cmd =
  let action jobfile domains engines_csv tier_name devirt fuel json =
    handle (fun () ->
        let engines =
          String.split_on_char ',' engines_csv
          |> List.map String.trim
          |> List.filter (fun e -> e <> "")
        in
        List.iter
          (fun e ->
            match Fpc_svc.Job.engine_of_name e with
            | Ok _ -> ()
            | Error m -> failwith m)
          engines;
        let tier = tier_of_string tier_name in
        let specs =
          (match jobfile with
          | Some path when Sys.file_exists path ->
            List.map (apply_tier_default tier) (read_jobfile path)
          | Some path -> failwith (Printf.sprintf "%s: no such jobfile" path)
          | None -> suite_specs ~engines ~tier ~fuel)
          |> List.map (apply_devirt_default devirt)
        in
        if specs = [] then failwith "no jobs to run";
        let results, metrics =
          Fpc_svc.Pool.run_jobs ~domains:(resolve_domains domains) specs
        in
        List.iter
          (fun r ->
            if json then
              print_endline
                (Fpc_util.Jsonout.to_string
                   (Fpc_svc.Job.result_to_json ~times:false r))
            else print_endline (Fpc_svc.Job.result_line r))
          results;
        prerr_string (Fpc_svc.Metrics.render metrics))
  in
  let jobfile =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"JOBFILE"
           ~doc:"A file of job request lines (prog=NAME or src=TEXT, plus \
                 optional engine= and fuel=; blank lines and # comments \
                 ignored).  Omit to run the whole built-in suite.")
  in
  let engines =
    Arg.(value & opt string "i1,i2,i3,i4" & info [ "engines" ] ~docv:"LIST"
           ~doc:"Comma-separated engines used when running the built-in \
                 suite (ignored with a JOBFILE).")
  in
  let fuel =
    Arg.(value & opt int Fpc_svc.Job.default_fuel & info [ "fuel" ] ~docv:"N"
           ~doc:"Step budget for suite jobs (ignored with a JOBFILE).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print each result as a JSON line (deterministic fields \
                 only) instead of the text summary.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run many jobs across a pool of worker domains, with a shared \
             compilation cache; per-job results (stdout, in submission \
             order) are byte-identical at any domain count and across \
             execution tiers.  Pool metrics go to stderr.")
    Term.(
      ret
        (const action $ jobfile $ domains_arg $ engines $ tier_arg
        $ devirt_arg $ fuel $ json))

(* ---- serve ---- *)

(* The stdin transport: same request lines, same refusal shapes
   (Fpc_net.Protocol) and same line-length discipline (Fpc_net.Framing)
   as the TCP server, but single-connection and order-relaxed: results
   stream out as jobs complete. *)
let serve_stdin ~domains ~times ~tier ~devirt ~max_line =
  let pool = Fpc_svc.Pool.create ~domains:(resolve_domains domains) () in
  let emit line =
    print_endline line;
    flush stdout
  in
  let print_result r =
    emit (Fpc_util.Jsonout.to_string (Fpc_svc.Job.result_to_json ~times r))
  in
  let drain_ready () = List.iter print_result (Fpc_svc.Pool.poll pool) in
  let framing = Fpc_net.Framing.of_fd ~max_line Unix.stdin in
  let stop = ref false in
  while not !stop do
    (match Fpc_net.Framing.next framing with
    | Fpc_net.Framing.Eof -> stop := true
    | Fpc_net.Framing.Overlong n ->
      emit
        (Fpc_net.Protocol.error_line ~error:"overlong-line"
           ~message:
             (Fpc_net.Protocol.overlong_message ~bytes_discarded:n
                ~limit:max_line))
    | Fpc_net.Framing.Line line ->
      let s = String.trim line in
      if s <> "" && s.[0] <> '#' then (
        match Fpc_net.Protocol.admin_of_line s with
        | Some Fpc_net.Protocol.Stats ->
          emit
            (Fpc_util.Jsonout.to_string
               (Fpc_svc.Metrics.to_json (Fpc_svc.Pool.metrics pool)))
        | Some Fpc_net.Protocol.Shutdown ->
          emit Fpc_net.Protocol.draining_line;
          stop := true
        | None -> (
          match Fpc_svc.Job.parse_request s with
          | Ok spec ->
            ignore
              (Fpc_svc.Pool.submit pool
                 (apply_devirt_default devirt (apply_tier_default tier spec)))
          | Error m ->
            emit (Fpc_net.Protocol.error_line ~error:"bad-request" ~message:m))));
    drain_ready ()
  done;
  List.iter print_result (Fpc_svc.Pool.await pool);
  let metrics = Fpc_svc.Pool.metrics pool in
  Fpc_svc.Pool.shutdown pool;
  prerr_string (Fpc_svc.Metrics.render metrics)

let serve_tcp ~domains ~times ~tier ~devirt ~host ~port ~max_connections
    ~max_pending ~max_line =
  (* Every server thread blocks in C (select, cond_wait), where a
     Sys.Signal_handle closure may never get to run.  Instead: block the
     drain signals before any thread is spawned (threads inherit the
     mask) and sigwait for them on a dedicated thread. *)
  ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
  let server =
    Fpc_net.Server.create ~host ~port ~domains:(resolve_domains domains)
      ~max_connections ~max_pending ~max_line ~times ~tier ~devirt ()
  in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        match Thread.wait_signal [ Sys.sigterm; Sys.sigint ] with
        | _ -> Fpc_net.Server.request_drain server
        | exception _ -> ())
      ()
  in
  Printf.eprintf "fpc: serving on %s:%d (%d domains); SIGTERM or a \
                  'shutdown' line drains gracefully\n%!"
    host
    (Fpc_net.Server.port server)
    (resolve_domains domains);
  let snap = Fpc_net.Server.wait server in
  (* the drain protocol's final stats line, then the human table *)
  Printf.eprintf "%s\n"
    (Fpc_util.Jsonout.to_string (Fpc_svc.Metrics.to_json snap));
  prerr_string (Fpc_svc.Metrics.render snap)

let serve_cmd =
  let action domains no_times tier_name devirt tcp host max_connections
      max_pending max_line =
    handle (fun () ->
        let times = not no_times in
        let tier = tier_of_string tier_name in
        match tcp with
        | Some port ->
          serve_tcp ~domains ~times ~tier ~devirt ~host ~port ~max_connections
            ~max_pending ~max_line
        | None ->
          if host <> "127.0.0.1" then
            failwith "--host only makes sense with --tcp";
          serve_stdin ~domains ~times ~tier ~devirt ~max_line)
  in
  let no_times =
    Arg.(value & flag & info [ "no-times" ]
           ~doc:"Omit host timing and cache-hit fields from responses, \
                 leaving only deterministic ones.")
  in
  let tcp =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Serve over TCP on $(docv) (0 picks an ephemeral port, \
                 printed to stderr) instead of stdin.  Connections carry \
                 the same newline-delimited requests; per-connection \
                 results come back in request order.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"Address to bind with --tcp.")
  in
  let max_connections =
    Arg.(value & opt int 16 & info [ "max-conns" ] ~docv:"N"
           ~doc:"With --tcp: connection cap; further connections are shed \
                 with a structured JSON line and closed.")
  in
  let max_pending =
    Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N"
           ~doc:"With --tcp: bound on jobs admitted but not yet answered; \
                 over it, requests are shed instead of queued.")
  in
  let max_line =
    Arg.(value & opt int Fpc_net.Framing.default_max_line
           & info [ "max-line" ] ~docv:"BYTES"
               ~doc:"Longest accepted request line; longer lines are \
                     discarded up to the next newline and reported with a \
                     structured error.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve job requests (prog=NAME or src=TEXT, optional engine=, \
             tier=, fuel=, trace= and deadline_ms=) over stdin or --tcp, \
             executing them on a worker-domain pool with admission \
             control; one JSON result line per job.  Admin lines: /stats \
             (counters as JSON), shutdown (graceful drain).")
    Term.(ret
            (const action $ domains_arg $ no_times $ tier_arg $ devirt_arg
             $ tcp $ host $ max_connections $ max_pending $ max_line))

(* ---- request ---- *)

(* A pipelined client for a running [fpc serve --tcp]: write every
   request line up front, then read exactly one response line per
   request, in order.  What the cram tests (and quick manual pokes) use
   to prove the serve path against [fpc batch]. *)
let request_cmd =
  let action host port lines =
    handle (fun () ->
        if lines = [] then failwith "request: no request lines given";
        match Fpc_net.Client.connect ~host ~port () with
        | exception Unix.Unix_error (e, _, _) ->
          failwith
            (Printf.sprintf "request: cannot connect to %s:%d (%s)" host port
               (Unix.error_message e))
        | client ->
          List.iter (Fpc_net.Client.send_line client) lines;
          List.iter
            (fun line ->
              match Fpc_net.Client.recv_line client with
              | Some resp -> print_endline resp
              | None ->
                failwith
                  (Printf.sprintf
                     "request: connection closed before %S was answered" line))
            lines;
          Fpc_net.Client.close client)
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"Server address.")
  in
  let port =
    Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"Server port (from the 'serving on' line).")
  in
  let lines =
    Arg.(value & pos_all string [] & info [] ~docv:"LINE"
           ~doc:"Request lines (jobs or admin commands), sent pipelined in \
                 the order given.")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send request lines to a running fpc serve --tcp, pipelined on \
             one connection, and print the response lines in order.")
    Term.(ret (const action $ host $ port $ lines))

(* ---- sched ---- *)

let sched_cmd =
  let action sessions window seed engine_name tier_name policy_name fuel =
    handle (fun () ->
        let engine = engine_of_string engine_name in
        let tier = tier_of_string tier_name in
        let policy =
          match Fpc_sched.Sched.policy_of_string policy_name with
          | Ok p -> p
          | Error m -> failwith m
        in
        let config =
          let c = Fpc_workload.Sessions.default ~total:sessions in
          { c with Fpc_workload.Sessions.window; seed }
        in
        let src = Fpc_workload.Sessions.program config in
        let convention = Fpc_compiler.Convention.for_engine engine in
        let image =
          match Fpc_compiler.Compile.image ~convention src with
          | Ok i -> i
          | Error m -> failwith m
        in
        let st =
          Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main"
            ~args:[] ()
        in
        let step =
          match tier with
          | Fpc_svc.Job.Interp ->
            fun n st -> Fpc_interp.Interp.run ~max_steps:n st
          | Fpc_svc.Job.Compiled | Fpc_svc.Job.Auto ->
            let tr, _hit = Fpc_tier.Tier.of_image image in
            fun n st -> Fpc_tier.Tier.run ~max_steps:n tr st
        in
        let t0 = Unix.gettimeofday () in
        let stats = Fpc_sched.Sched.run ~policy ~step ~fuel st in
        let run_s = Unix.gettimeofday () -. t0 in
        let o = Fpc_interp.Interp.outcome st in
        (match o.o_status with
        | Fpc_core.State.Halted -> ()
        | Fpc_core.State.Running -> failwith "still running"
        | Fpc_core.State.Trapped r ->
          failwith ("trapped: " ^ Fpc_core.State.trap_reason_to_string r));
        let lifo_reserved =
          st.Fpc_core.State.metrics.peak_live_procs
          * Fpc_workload.Sessions.worst_extent_words config ~image
        in
        let report = Fpc_sched.Sched.report ~lifo_reserved ~stats st in
        (* stdout stays deterministic (simulated meters only, cram-safe);
           host throughput goes to stderr like run's timing line *)
        Printf.printf "output=%s\n"
          (String.concat "," (List.map string_of_int o.o_output));
        List.iter print_endline (Fpc_sched.Sched.report_lines report);
        Printf.eprintf
          "engine=%s policy=%s instructions=%d cycles=%d sessions/s=%.0f\n"
          engine_name
          (Fpc_sched.Sched.policy_to_string policy)
          o.o_instructions o.o_cycles
          (float_of_int sessions /. max run_s 1e-9))
  in
  let sessions =
    Arg.(value & opt int 256 & info [ "sessions" ] ~docv:"N"
           ~doc:"Total sessions streamed through the machine.")
  in
  let window =
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"N"
           ~doc:"Admission window: at most $(docv) sessions live at once.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Perturbs every session's think-time and call-depth draw.")
  in
  let policy =
    Arg.(value & opt string "yield" & info [ "sched" ] ~docv:"POLICY"
           ~doc:"Switching policy: yield (sessions run to their own switch \
                 points; outputs are engine-independent) or preempt[:N] \
                 (inject a round-robin switch about every N steps, default \
                 1000, at the next statement boundary).")
  in
  let fuel =
    Arg.(value & opt int Fpc_svc.Job.default_fuel & info [ "fuel" ] ~docv:"N"
           ~doc:"Total step budget for the whole workload.")
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Run a generated session workload (thousands of green-thread \
             sessions multiplexed over one machine by coroutine XFER) under \
             the scheduler, printing the deterministic scheduling report; \
             host throughput goes to stderr.")
    Term.(
      ret
        (const action $ sessions $ window $ seed $ engine_arg $ tier_arg
        $ policy $ fuel))

let main_cmd =
  let doc = "the Fast Procedure Calls (Lampson, ASPLOS 1982) reproduction" in
  Cmd.group (Cmd.info "fpc" ~doc)
    [ run_cmd; disasm_cmd; trace_cmd; profile_cmd; image_cmd; experiment_cmd;
      suite_cmd; batch_cmd; serve_cmd; request_cmd; sched_cmd ]

let () = exit (Cmd.eval main_cmd)
