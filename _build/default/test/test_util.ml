(* Unit and property tests for Fpc_util. *)

open Fpc_util

let qtest = QCheck_alcotest.to_alcotest

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ---- Bits ---- *)

let test_mask () =
  Alcotest.(check int) "mask 0" 0 (Bits.mask 0);
  Alcotest.(check int) "mask 1" 1 (Bits.mask 1);
  Alcotest.(check int) "mask 8" 255 (Bits.mask 8);
  Alcotest.(check int) "mask 16" 65535 (Bits.mask 16)

let test_get_set () =
  let w = Bits.set ~word:0 ~pos:6 ~width:10 513 in
  Alcotest.(check int) "get back" 513 (Bits.get ~word:w ~pos:6 ~width:10);
  Alcotest.(check int) "low bits clear" 0 (Bits.get ~word:w ~pos:0 ~width:6);
  let w2 = Bits.set ~word:w ~pos:0 ~width:6 33 in
  Alcotest.(check int) "field 1 kept" 513 (Bits.get ~word:w2 ~pos:6 ~width:10);
  Alcotest.(check int) "field 2 set" 33 (Bits.get ~word:w2 ~pos:0 ~width:6)

let test_set_rejects () =
  Alcotest.check_raises "overflow"
    (Invalid_argument "Bits.set: value 16 does not fit in 4 bits") (fun () ->
      ignore (Bits.set ~word:0 ~pos:0 ~width:4 16))

let test_signed_roundtrip () =
  List.iter
    (fun v ->
      let u = Bits.unsigned_of_signed ~width:16 v in
      Alcotest.(check int) (string_of_int v) v (Bits.signed_of_unsigned ~width:16 u))
    [ 0; 1; -1; 32767; -32768; 1234; -9999 ]

let test_bytes () =
  Alcotest.(check int) "high" 0xAB (Bits.byte_high 0xABCD);
  Alcotest.(check int) "low" 0xCD (Bits.byte_low 0xABCD);
  Alcotest.(check int) "reassemble" 0xABCD (Bits.word_of_bytes ~high:0xAB ~low:0xCD)

let prop_field_roundtrip =
  QCheck.Test.make ~name:"bits: set/get roundtrip"
    QCheck.(triple (int_bound 50) (int_bound 12) (int_bound 4095))
    (fun (pos, width, v) ->
      let width = max 1 width in
      let pos = min pos (60 - width) in
      let v = v land Bits.mask width in
      Bits.get ~word:(Bits.set ~word:0 ~pos ~width v) ~pos ~width = v)

let prop_signed_roundtrip =
  QCheck.Test.make ~name:"bits: signed/unsigned roundtrip"
    QCheck.(int_range (-32768) 32767)
    (fun v ->
      Bits.signed_of_unsigned ~width:16 (Bits.unsigned_of_signed ~width:16 v) = v)

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:99 and b = Prng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_differs () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next a = Prng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng ~bound:17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let w = Prng.int_in rng ~lo:5 ~hi:9 in
    Alcotest.(check bool) "int_in" true (w >= 5 && w <= 9)
  done

let test_prng_weighted () =
  let rng = Prng.create ~seed:3 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.weighted rng [ (1.0, `A); (9.0, `B) ] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let b = Hashtbl.find counts `B in
  Alcotest.(check bool) "B dominates ~9:1" true (b > 8500 && b < 9500)

let test_prng_geometric_mean () =
  let rng = Prng.create ~seed:11 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Prng.geometric rng ~p:0.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean ~1.0" true (mean > 0.9 && mean < 1.1)

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:5 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 Fun.id) sorted

let test_prng_copy_independent () =
  let a = Prng.create ~seed:42 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.next a) (Prng.next b);
  ignore (Prng.next a);
  Alcotest.(check bool) "then diverges only by use" true (Prng.next a <> Prng.next a)

(* ---- Histogram ---- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 5; 1; 5; 9; 5 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "total" 25 (Histogram.total h);
  Alcotest.(check (float 0.001)) "mean" 5.0 (Histogram.mean h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 9 (Histogram.max_value h);
  Alcotest.(check int) "median" 5 (Histogram.percentile h 50.0)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h i
  done;
  Alcotest.(check int) "p95" 95 (Histogram.percentile h 95.0);
  Alcotest.(check int) "p1" 1 (Histogram.percentile h 1.0);
  Alcotest.(check (float 0.001)) "fraction <= 40" 0.4 (Histogram.fraction_le h 40)

let test_histogram_add_many () =
  let h = Histogram.create () in
  Histogram.add_many h 7 ~count:10;
  Alcotest.(check int) "count" 10 (Histogram.count h);
  Alcotest.(check int) "total" 70 (Histogram.total h)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram: percentile monotone"
    QCheck.(list_of_size (Gen.int_range 1 50) (int_bound 1000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      Histogram.percentile h 25.0 <= Histogram.percentile h 75.0)

(* ---- Tablefmt ---- *)

let test_table_render () =
  let t =
    Tablefmt.create ~title:"demo"
      ~columns:[ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "22" ];
  Tablefmt.add_note t "a note";
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (contains ~needle:"== demo ==" s);
  Alcotest.(check bool) "has note" true (contains ~needle:"a note" s);
  Alcotest.(check bool) "rows in order" true (contains ~needle:"alpha" s)

let test_table_mismatch () =
  let t = Tablefmt.create ~title:"x" ~columns:[ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "row width"
    (Invalid_argument "Tablefmt.add_row: expected 1 cells, got 2") (fun () ->
      Tablefmt.add_row t [ "1"; "2" ])

let test_cells () =
  Alcotest.(check string) "pct" "95.0%" (Tablefmt.cell_pct 0.95);
  Alcotest.(check string) "ratio" "1.33x" (Tablefmt.cell_ratio 1.3333);
  Alcotest.(check string) "float" "2.50" (Tablefmt.cell_float 2.5)

let () =
  Alcotest.run "util"
    [
      ( "bits",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "set rejects oversize" `Quick test_set_rejects;
          Alcotest.test_case "signed roundtrip" `Quick test_signed_roundtrip;
          Alcotest.test_case "byte split" `Quick test_bytes;
          qtest prop_field_roundtrip;
          qtest prop_signed_roundtrip;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seed_differs;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "geometric mean" `Quick test_prng_geometric_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basic;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "add_many" `Quick test_histogram_add_many;
          qtest prop_histogram_percentile_monotone;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row mismatch" `Quick test_table_mismatch;
          Alcotest.test_case "cell formatting" `Quick test_cells;
        ] );
    ]
