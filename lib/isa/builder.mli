(** Code emission buffer with labels and late-patched operands.

    The compiler emits each procedure's body through a builder; the linker
    later patches DIRECTCALL / SHORTDIRECTCALL operands once the absolute
    layout of code segments is known (§6's early binding is a link-time
    decision in this reproduction).

    Jumps to labels are always emitted in their wide (3-byte) form so that
    instruction offsets are stable before displacements are known. *)

type t

val create : unit -> t

val here : t -> int
(** Current byte offset from the start of this builder's code. *)

val emit : t -> Opcode.t -> unit
(** Append one instruction. *)

val emit_placeholder : t -> Opcode.t -> int
(** Append an instruction whose operand will be patched after linking
    (e.g. [Dfc 0]); returns the byte offset of its first byte. *)

val emit_efc_padded : t -> int -> int
(** Append an EXTERNALCALL through LV index [lv] in its 4-byte padded
    shape (wide EFC + two NOP pads — the same bytes the linker's D2
    fallback writes), returning the byte offset of its first byte.  The
    pads reserve room for a link-time rewrite to [Dfc]/[Sdfc] when an
    analysis proves the site single-target; unrewritten sites execute
    the pads on return. *)

type label

val new_label : t -> label

val place : t -> label -> unit
(** Define the label at the current offset.  A label may be placed once. *)

val jump : t -> [ `J | `Jz | `Jnz ] -> label -> unit
(** Append a wide jump to [label]; the displacement is patched by
    {!to_bytes}. *)

val to_bytes : t -> bytes
(** The finished code with all label displacements resolved.  Raises
    [Invalid_argument] if some referenced label was never placed. *)

(** {1 Link-time patching}

    These rewrite operand bytes of an already-laid-out instruction inside a
    byte buffer (an extracted code segment, before it is blitted into
    simulated memory). *)

val patch_dfc : bytes -> pos:int -> target:int -> unit
(** Rewrite the 24-bit operand of the [Dfc] at byte offset [pos]. *)

val patch_sdfc : bytes -> pos:int -> displacement:int -> unit
(** Rewrite the [Sdfc] (including its opcode's high bits) at [pos]. *)

val rewrite_dfc_to_sdfc : bytes -> pos:int -> displacement:int -> unit
(** Turn a 4-byte [Dfc] at [pos] into a 3-byte [Sdfc] followed by a [Nop]
    pad, used when the linker finds the target within short reach but must
    preserve layout. *)
