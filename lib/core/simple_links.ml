open Fpc_machine
open Fpc_mesa

type t = {
  slv : (string, int) Hashtbl.t;
  sev : (string, int) Hashtbl.t;
  by_gf : (int, string) Hashtbl.t;
  slv_by_gf : (int, int) Hashtbl.t;
      (** gf -> import-table base: the int-keyed index the per-call guard
          peeks through (one int hash instead of two string hashes) *)
  sev_by_gf : (int, int) Hashtbl.t;  (** gf -> own-entry-table base *)
  mutable words : int;
  mutable replay : int array;
      (** flattened (addr, word) pairs install wrote, for {!reinstall} *)
  mutable cursor_after : int;  (** the image's static cursor post-install *)
}

let pack_entry image ~target_instance ~target_proc =
  let abs = Image.entry_byte_address image ~instance:target_instance ~proc:target_proc in
  let ii = Image.find_instance image target_instance in
  (abs land 0xFFFF, ii.ii_gf_addr lor ((abs lsr 16) land 1))

(* Resolutions return both halves packed into one immediate int —
   [(abs lsl 16) lor gf] — so the per-call path allocates nothing (abs is
   17 bits, gf 16; both fit with room to spare). *)
let pair_abs p = p lsr 16
let pair_gf p = p land 0xFFFF

let install_into t image =
  t.words <- 0;
  let written = ref [] in
  let poke addr w =
    Memory.poke image.Image.mem addr w;
    written := w :: addr :: !written
  in
  List.iter
    (fun (ii : Image.instance_info) ->
      let m = Image.find_module image ii.ii_module in
      let n_imports = Array.length ii.ii_imports in
      let n_procs = List.length m.Compiled.m_procs in
      let slv_base = Image.alloc_static image ~words:(max 1 (2 * n_imports)) ~quad:false in
      let sev_base = Image.alloc_static image ~words:(2 * n_procs) ~quad:false in
      t.words <- t.words + max 1 (2 * n_imports) + (2 * n_procs);
      Array.iteri
        (fun i (tm, tp) ->
          let w0, w1 = pack_entry image ~target_instance:tm ~target_proc:tp in
          poke (slv_base + (2 * i)) w0;
          poke (slv_base + (2 * i) + 1) w1)
        ii.ii_imports;
      List.iteri
        (fun i (p : Compiled.proc) ->
          let w0, w1 = pack_entry image ~target_instance:ii.ii_name ~target_proc:p.p_name in
          poke (sev_base + (2 * i)) w0;
          poke (sev_base + (2 * i) + 1) w1)
        m.Compiled.m_procs;
      Hashtbl.replace t.slv ii.ii_name slv_base;
      Hashtbl.replace t.sev ii.ii_name sev_base;
      Hashtbl.replace t.by_gf ii.ii_gf_addr ii.ii_name;
      Hashtbl.replace t.slv_by_gf ii.ii_gf_addr slv_base;
      Hashtbl.replace t.sev_by_gf ii.ii_gf_addr sev_base)
    image.dir.instances;
  (* [written] is newest-first (word, addr, word, addr, ...): materialise
     the replay tape oldest-first as addr-then-word pairs. *)
  let tape = Array.of_list !written in
  let n = Array.length tape in
  let replay = Array.make n 0 in
  for i = 0 to n - 1 do
    replay.(i) <- tape.(n - 1 - i)
  done;
  t.replay <- replay;
  t.cursor_after <- image.static_cursor;
  t

let install image =
  install_into
    {
      slv = Hashtbl.create 8;
      sev = Hashtbl.create 8;
      by_gf = Hashtbl.create 8;
      slv_by_gf = Hashtbl.create 8;
      sev_by_gf = Hashtbl.create 8;
      words = 0;
      replay = [||];
      cursor_after = 0;
    }
    image

(* The arena's per-job path: link-table contents and placement are a pure
   function of the pristine image, so after [Image.clone_into] rewound the
   store and static cursor, reinstalling is replaying the recorded words —
   no hashing, no closures, no allocation. *)
let reinstall t image =
  let tape = t.replay in
  let n = Array.length tape in
  let i = ref 0 in
  while !i < n do
    Memory.poke image.Image.mem tape.(!i) tape.(!i + 1);
    Image.notify_relink image ~addr:tape.(!i) ~word:tape.(!i + 1);
    i := !i + 2
  done;
  image.Image.static_cursor <- t.cursor_after

let read_pair image base index =
  let w0 = Memory.read image.Image.mem (base + (2 * index)) in
  let w1 = Memory.read image.Image.mem (base + (2 * index) + 1) in
  let gf = w1 land 0xFFFC in
  let abs = ((w1 land 1) lsl 16) lor w0 in
  (abs lsl 16) lor gf

(* Unmetered twin of {!read_pair} for the compiled tier's fused-call
   guards: the tier compares the table's current contents against the
   resolution it baked at translate time, and that comparison is a host
   observation, not a simulated reference (the metered reads are charged
   by the fused bill exactly as the interpreter would have). *)
let peek_pair image base index =
  let w0 = Memory.peek image.Image.mem (base + (2 * index)) in
  let w1 = Memory.peek image.Image.mem (base + (2 * index) + 1) in
  let gf = w1 land 0xFFFC in
  let abs = ((w1 land 1) lsl 16) lor w0 in
  (abs lsl 16) lor gf

let expected_pair image ~target_instance ~target_proc =
  let w0, w1 = pack_entry image ~target_instance ~target_proc in
  let gf = w1 land 0xFFFC in
  let abs = ((w1 land 1) lsl 16) lor w0 in
  (abs lsl 16) lor gf

let resolve_import t image ~instance ~lv_index =
  read_pair image (Hashtbl.find t.slv instance) lv_index

let resolve_own t image ~instance ~ev_index =
  read_pair image (Hashtbl.find t.sev instance) ev_index

let instance_of_gf t ~gf = Hashtbl.find t.by_gf gf

let resolve_import_by_gf t image ~gf ~lv_index =
  resolve_import t image ~instance:(instance_of_gf t ~gf) ~lv_index

let resolve_own_by_gf t image ~gf ~ev_index =
  resolve_own t image ~instance:(instance_of_gf t ~gf) ~ev_index

(* Peek variants keyed by the GF register, returning [-1] (never a valid
   packed pair — bit 16 of the entry address caps abs below 2^17, and a
   pair is non-negative) when the gf is unknown or the table is absent. *)
let peek_resolve_import_by_gf t image ~gf ~lv_index =
  match Hashtbl.find_opt t.slv_by_gf gf with
  | None -> -1
  | Some base -> peek_pair image base lv_index

let peek_resolve_own_by_gf t image ~gf ~ev_index =
  match Hashtbl.find_opt t.sev_by_gf gf with
  | None -> -1
  | Some base -> peek_pair image base ev_index

(* Host-side relink for I1, the simple-table analogue of
   {!Fpc_mesa.Linker.rebind_lv}: re-point one import pair at a new
   target and tell the relink observer.  Not recorded on the replay
   tape — an arena reset restores the pristine binding, exactly like
   the Mesa LV words it mirrors. *)
let rebind t image ~instance ~lv_index ~target:(tm, tp) =
  let ii = Image.find_instance image instance in
  if lv_index < 0 || lv_index >= Array.length ii.Image.ii_imports then
    invalid_arg "Simple_links.rebind: LV index out of range";
  let base = Hashtbl.find t.slv instance in
  let w0, w1 = pack_entry image ~target_instance:tm ~target_proc:tp in
  Memory.poke image.Image.mem (base + (2 * lv_index)) w0;
  Memory.poke image.Image.mem (base + (2 * lv_index) + 1) w1;
  Image.notify_relink image ~addr:(base + (2 * lv_index)) ~word:w0;
  Image.notify_relink image ~addr:(base + (2 * lv_index) + 1) ~word:w1

let resolve_descriptor t image ~gfi ~ev =
  (* Identify the instance owning this gfi (directory lookup models the
     one-reference-to-a-record structure of §4; the two metered reads below
     are the record fetch itself). *)
  let ii =
    List.find
      (fun (ii : Image.instance_info) ->
        gfi >= ii.ii_gfi && gfi < ii.ii_gfi + ii.ii_gfi_count)
      image.Image.dir.instances
  in
  let bias = gfi - ii.ii_gfi in
  resolve_own t image ~instance:ii.ii_name ~ev_index:((bias * 32) + ev)

let table_words t = t.words
