(* Quickstart: compile a mini-Mesa program and run it on the Mesa-style
   machine, then compare the four implementations of the paper on the same
   source.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
MODULE Main;
PROC square(x: INT): INT =
  RETURN x * x;
END;
PROC sum_of_squares(n: INT): INT =
  VAR i: INT := 1;
  VAR acc: INT := 0;
  WHILE i <= n DO
    acc := acc + square(i);
    i := i + 1;
  END;
  RETURN acc;
END;
PROC main() =
  OUTPUT sum_of_squares(20);
END;
END;
|}

let () =
  print_endline "-- Fast Procedure Calls: quickstart --";
  print_endline "";
  (* One call does everything: parse, type-check, lower, generate code,
     link, and interpret Main.main under the chosen engine. *)
  (match Fpc_compiler.Compile.run ~engine:Fpc_core.Engine.i2 source with
  | Error msg -> failwith msg
  | Ok outcome ->
    Printf.printf "output under I2 (the Mesa implementation): %s\n"
      (String.concat ", " (List.map string_of_int outcome.o_output)));
  print_endline "";
  print_endline "the same program under each implementation of the paper:";
  Printf.printf "  %-6s %14s %14s %16s\n" "engine" "instructions" "cycles"
    "storage refs";
  List.iter
    (fun (name, engine) ->
      match Fpc_compiler.Compile.run ~engine source with
      | Error msg -> failwith msg
      | Ok o ->
        Printf.printf "  %-6s %14d %14d %16d\n" name o.o_instructions o.o_cycles
          o.o_mem_refs)
    [
      ("I1", Fpc_core.Engine.i1);
      ("I2", Fpc_core.Engine.i2);
      ("I3", Fpc_core.Engine.i3 ());
      ("I4", Fpc_core.Engine.i4 ());
    ];
  print_endline "";
  print_endline
    "same answers, falling cost: I1 models \xC2\xA74 directly, I2 is the \
     space-tight Mesa encoding (\xC2\xA75), I3 adds the IFU return stack \
     (\xC2\xA76), I4 adds register banks and free frames (\xC2\xA77)."
