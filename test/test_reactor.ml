(* Tests for the event-loop building blocks: the timer wheel's firing /
   cancellation / revolution behaviour, the output buffer's partial-write
   handling against a really-full socket, and the loop's readiness,
   timer and cross-thread post paths over real pipes. *)

open Fpc_reactor

(* ---- timer wheel ---- *)

let test_wheel_fires_in_order () =
  let w = Wheel.create ~granularity_ms:2 ~slots:16 ~now:0.0 () in
  let log = ref [] in
  let arm at tag = ignore (Wheel.add w ~at (fun () -> log := tag :: !log)) in
  arm 0.050 "c";
  arm 0.010 "a";
  arm 0.030 "b";
  Alcotest.(check int) "3 live" 3 (Wheel.live w);
  Wheel.advance w ~now:0.005;
  Alcotest.(check (list string)) "nothing due yet" [] (List.rev !log);
  Wheel.advance w ~now:0.012;
  Alcotest.(check (list string)) "first due" [ "a" ] (List.rev !log);
  Wheel.advance w ~now:0.060;
  Alcotest.(check (list string)) "rest in time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check int) "none live" 0 (Wheel.live w);
  Alcotest.(check int) "three fired" 3 (Wheel.fired w)

let test_wheel_cancel () =
  let w = Wheel.create ~granularity_ms:2 ~slots:16 ~now:0.0 () in
  let fired = ref 0 in
  let t1 = Wheel.add w ~at:0.010 (fun () -> incr fired) in
  let _t2 = Wheel.add w ~at:0.010 (fun () -> incr fired) in
  Wheel.cancel w t1;
  Wheel.cancel w t1 (* idempotent *);
  Alcotest.(check int) "one live after cancel" 1 (Wheel.live w);
  Wheel.advance w ~now:0.020;
  Alcotest.(check int) "only the uncancelled fired" 1 !fired;
  (* cancelling after the fire is a no-op, not a count underflow *)
  Wheel.cancel w t1;
  Alcotest.(check int) "live count intact" 0 (Wheel.live w)

let test_wheel_beyond_horizon () =
  (* 8 slots x 2ms = a 16ms revolution; a 100ms timer shares a slot with
     earlier revolutions and must survive every sweep until its time *)
  let w = Wheel.create ~granularity_ms:2 ~slots:8 ~now:0.0 () in
  let fired = ref false in
  ignore (Wheel.add w ~at:0.100 (fun () -> fired := true));
  let t = ref 0.0 in
  while !t < 0.095 do
    t := !t +. 0.004;
    Wheel.advance w ~now:!t
  done;
  Alcotest.(check bool) "survived 6 revolutions" false !fired;
  Alcotest.(check (option (float 0.02)))
    "next_due sees it" (Some 0.005)
    (Wheel.next_due w ~now:0.095);
  Wheel.advance w ~now:0.101;
  Alcotest.(check bool) "fired at its time" true !fired

let test_wheel_overdue_insert () =
  let w = Wheel.create ~now:10.0 () in
  let fired = ref false in
  ignore (Wheel.add w ~at:9.0 (fun () -> fired := true));
  Alcotest.(check (option (float 0.001))) "overdue reads as 0" (Some 0.0)
    (Wheel.next_due w ~now:10.0);
  Wheel.advance w ~now:10.0;
  Alcotest.(check bool) "fires on the next advance" true !fired

(* ---- outbuf ---- *)

let test_outbuf_partial_writes () =
  (* a socketpair with a tiny send buffer: flush must stop at Partial,
     resume after the reader drains, and deliver every byte in order *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.setsockopt_int a Unix.SO_SNDBUF 4096;
  let ob = Outbuf.create ~initial:64 () in
  let payload = String.init (512 * 1024) (fun i -> Char.chr (i mod 251)) in
  Outbuf.add_string ob payload;
  Alcotest.(check int) "buffered" (String.length payload) (Outbuf.length ob);
  let got = Buffer.create (String.length payload) in
  let chunk = Bytes.create 65536 in
  let rec drain_reader () =
    match Unix.read b chunk 0 (Bytes.length chunk) with
    | n when n > 0 ->
      Buffer.add_subbytes got chunk 0 n;
      drain_reader ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  Unix.set_nonblock b;
  let partials = ref 0 in
  let rec pump () =
    match Outbuf.flush ob a with
    | Outbuf.Flushed -> ()
    | Outbuf.Partial ->
      incr partials;
      drain_reader ();
      pump ()
    | Outbuf.Error -> Alcotest.fail "unexpected write error"
  in
  pump ();
  drain_reader ();
  Alcotest.(check bool) "socket really filled up at least once" true
    (!partials > 0);
  Alcotest.(check int) "every byte arrived" (String.length payload)
    (Buffer.length got);
  Alcotest.(check bool) "bytes identical" true
    (String.equal payload (Buffer.contents got));
  Alcotest.(check int) "high-water saw the full backlog"
    (String.length payload) (Outbuf.high_water ob);
  Unix.close a;
  Unix.close b

let test_outbuf_peer_gone () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.close b;
  let ob = Outbuf.create () in
  Outbuf.add_string ob (String.make 100_000 'x');
  let rec pump n =
    if n > 20 then Alcotest.fail "no error after 20 flushes"
    else
      match Outbuf.flush ob a with
      | Outbuf.Error -> ()
      | Outbuf.Flushed | Outbuf.Partial -> pump (n + 1)
  in
  pump 0;
  Unix.close a

(* ---- the loop ---- *)

let test_loop_readiness_and_stop () =
  let loop = Loop.create () in
  let rd, wr = Unix.pipe () in
  Unix.set_nonblock rd;
  let seen = Buffer.create 16 in
  let buf = Bytes.create 64 in
  let w = ref None in
  let on_readable () =
    match Unix.read rd buf 0 (Bytes.length buf) with
    | 0 ->
      Option.iter (Loop.unwatch loop) !w;
      Loop.stop loop
    | n -> Buffer.add_subbytes seen buf 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let watcher = Loop.watch loop rd ~on_readable () in
  w := Some watcher;
  Loop.interest loop watcher ~read:true ~write:false;
  let writer =
    Thread.create
      (fun () ->
        ignore (Unix.write_substring wr "hello " 0 6);
        Thread.delay 0.02;
        ignore (Unix.write_substring wr "loop" 0 4);
        Unix.close wr)
      ()
  in
  Loop.run loop;
  Thread.join writer;
  Unix.close rd;
  Alcotest.(check string) "all bytes dispatched" "hello loop"
    (Buffer.contents seen);
  let s = Loop.stats loop in
  Alcotest.(check bool) "loop iterated" true (s.Loop.iterations >= 2)

let test_loop_post_from_thread () =
  let loop = Loop.create () in
  let hits = ref [] in
  let poster =
    Thread.create
      (fun () ->
        Thread.delay 0.02;
        Loop.post loop (fun () -> hits := "one" :: !hits);
        Loop.post loop (fun () -> hits := "two" :: !hits);
        Loop.request_stop loop)
      ()
  in
  (* nothing watched, no timers: the loop must still wake for the posts *)
  Loop.run loop;
  Thread.join poster;
  Alcotest.(check (list string)) "posted thunks ran in order" [ "one"; "two" ]
    (List.rev !hits)

let test_loop_timer_fires () =
  let loop = Loop.create () in
  let t0 = Unix.gettimeofday () in
  let elapsed = ref 0.0 in
  ignore
    (Loop.after loop ~ms:30 (fun () ->
         elapsed := Unix.gettimeofday () -. t0;
         Loop.stop loop));
  let cancelled_fired = ref false in
  let c = Loop.after loop ~ms:5 (fun () -> cancelled_fired := true) in
  Loop.cancel loop c;
  Loop.run loop;
  Alcotest.(check bool) "cancelled timer never fired" false !cancelled_fired;
  Alcotest.(check bool) "fired no earlier than armed" true (!elapsed >= 0.025);
  Alcotest.(check bool) "fired reasonably promptly" true (!elapsed < 2.0)

let () =
  (* writes to a dead peer must surface as Outbuf.Error, not kill us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "reactor"
    [
      ( "wheel",
        [
          Alcotest.test_case "fires in time order" `Quick
            test_wheel_fires_in_order;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "beyond one revolution" `Quick
            test_wheel_beyond_horizon;
          Alcotest.test_case "overdue insert" `Quick test_wheel_overdue_insert;
        ] );
      ( "outbuf",
        [
          Alcotest.test_case "partial writes on a full socket" `Quick
            test_outbuf_partial_writes;
          Alcotest.test_case "peer gone reads as Error" `Quick
            test_outbuf_peer_gone;
        ] );
      ( "loop",
        [
          Alcotest.test_case "readiness dispatch and stop" `Quick
            test_loop_readiness_and_stop;
          Alcotest.test_case "cross-thread post wakes the loop" `Quick
            test_loop_post_from_thread;
          Alcotest.test_case "timers fire, cancels hold" `Quick
            test_loop_timer_fires;
        ] );
    ]
