type ready = {
  r_fd : Unix.file_descr;
  r_readable : bool;
  r_writable : bool;
}

type t = {
  name : string;
  add : Unix.file_descr -> unit;
  modify : Unix.file_descr -> read:bool -> write:bool -> unit;
  remove : Unix.file_descr -> unit;
  wait : float -> ready list;
}

(* The Unix.select backend.  Interest lives in a table the wait call
   folds into the two fd lists select wants; readiness comes back as the
   merged [ready] list.  O(registered fds) per wait — fine for the fan-in
   select can address at all (fd numbers below FD_SETSIZE, 1024 on
   Linux).  An epoll backend slots in by producing the same record from
   its own bookkeeping. *)

type interest = { mutable want_read : bool; mutable want_write : bool }

let select () =
  let fds : (Unix.file_descr, interest) Hashtbl.t = Hashtbl.create 64 in
  let add fd =
    if Hashtbl.mem fds fd then invalid_arg "Backend.add: fd already registered";
    Hashtbl.replace fds fd { want_read = false; want_write = false }
  in
  let modify fd ~read ~write =
    match Hashtbl.find_opt fds fd with
    | None -> invalid_arg "Backend.modify: fd not registered"
    | Some i ->
      i.want_read <- read;
      i.want_write <- write
  in
  let remove fd = Hashtbl.remove fds fd in
  let wait timeout =
    let rl, wl =
      Hashtbl.fold
        (fun fd i (rl, wl) ->
          ( (if i.want_read then fd :: rl else rl),
            if i.want_write then fd :: wl else wl ))
        fds ([], [])
    in
    if rl = [] && wl = [] && timeout < 0.0 then
      (* nothing to watch and nothing scheduled: a select here would
         sleep forever; the loop guards against this, but be safe *)
      []
    else
      match Unix.select rl wl [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* spurious wake: gives pending OCaml signal handlers a turn *)
        []
      | readable, writable, _ ->
        let seen : (Unix.file_descr, ready ref) Hashtbl.t =
          Hashtbl.create (List.length readable + List.length writable)
        in
        List.iter
          (fun fd ->
            Hashtbl.replace seen fd
              (ref { r_fd = fd; r_readable = true; r_writable = false }))
          readable;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt seen fd with
            | Some r -> r := { !r with r_writable = true }
            | None ->
              Hashtbl.replace seen fd
                (ref { r_fd = fd; r_readable = false; r_writable = true }))
          writable;
        Hashtbl.fold (fun _ r acc -> !r :: acc) seen []
  in
  { name = "select"; add; modify; remove; wait }

let default = select
