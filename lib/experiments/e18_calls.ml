(** E18 — cross-call fusion: inlining known-leaf DIRECTCALLs (extension).

    §2 measures a procedure call every ~20 instructions; the tier's answer
    is to fuse {e through} the call: a DIRECTCALL whose callee is a known
    straight-line leaf is spliced into the caller's superinstruction, with
    one combined depth guard and one batched meter bill.  The contract is
    E16's, extended across the call: outputs, instruction counts, cycles,
    storage references and transfer counts stay bit-identical to the
    interpreter — on the suite, on call-dense synthetic programs, and
    across a forced mid-run relink that invalidates every baked resolution
    (the deopt protocol).

    The speedup table is deliberately honest about the ceiling.  Fusion
    removes host-level dispatch, not architecture: the frame allocation,
    argument stores, transfer bookkeeping and meters of every call are
    simulated identically on both tiers, so call-dense kernels gain less
    than loop kernels, and I4 least of all — its stack banks make the
    {e interpreter's} locals nearly free, shrinking the denominator the
    tier is measured against. *)

open Fpc_util

let timing_reps = 5

let fingerprint (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( Fpc_core.State.output st,
    m.instructions,
    Fpc_machine.Cost.cycles st.cost,
    Fpc_machine.Cost.mem_refs st.cost,
    (m.calls, m.returns, m.other_xfers, m.fast_transfers) )

let boot ~image ~engine =
  let image = Fpc_mesa.Image.clone image in
  Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main" ~args:[]
    ()

let time_runs ~image ~engine f =
  let samples =
    List.init timing_reps (fun _ ->
        let st = boot ~image ~engine in
        let t0 = Unix.gettimeofday () in
        f st;
        Unix.gettimeofday () -. t0)
  in
  match List.sort compare samples with
  | [] -> 0.0
  | sorted -> List.nth sorted (timing_reps / 2)

(* ---- differential: suite + synthetic + forced relink-deopt ---- *)

let check ~image ~engine =
  let tr = Fpc_tier.Tier.translate image in
  let sti = boot ~image ~engine in
  Fpc_interp.Interp.run sti;
  let stc = boot ~image ~engine in
  Fpc_tier.Tier.run tr stc;
  if fingerprint sti = fingerprint stc then 0 else 1

let suite_mismatches engine =
  let convention = Fpc_compiler.Convention.for_engine engine in
  List.fold_left
    (fun acc program ->
      acc + check ~image:(Harness.image_of ~convention ~program ()) ~engine)
    0 Fpc_workload.Programs.names

let synthetic_seeds = List.init 12 (fun i -> (3 * i) + 1)

let synthetic_mismatches engine =
  List.fold_left
    (fun acc seed ->
      let source =
        Fpc_workload.Synthetic.random_program ~leaf_call_rate:0.4 ~seed ()
      in
      let image =
        match Fpc_compiler.Compile.image_for_engine ~engine source with
        | Ok image -> image
        | Error m -> failwith ("E18 synthetic compile: " ^ m)
      in
      acc + check ~image ~engine)
    0 synthetic_seeds

(* The relink probe: attach a translation (so the relink observer is
   live and every fused call site carries its baked descriptor
   resolution), pause mid-loop, re-point Main's import of [Lib.inc] at
   [Lib.trip], and finish.  The tier must notice the relink, tear down
   its fused resolutions, and still match the interpreter run relinked at
   the same instant. *)
let relink_source =
  "MODULE Lib;\n\
   PROC inc(x: INT): INT =\n  RETURN x + 2;\nEND;\n\
   PROC trip(x: INT): INT =\n  RETURN x * 3 + 1;\nEND;\nEND;\n\n\
   MODULE Main;\nIMPORT Lib;\n\
   PROC main() =\n\
   \  VAR acc: INT := 1;\n\
   \  VAR i: INT := 0;\n\
   \  WHILE i < 120 DO\n\
   \    acc := Lib.inc(acc);\n\
   \    i := i + 1;\n\
   \  END;\n\
   \  OUTPUT acc;\n\
   END;\nEND;\n"

(* Relink needs a live LV table, so every engine runs the §5 external
   encoding here (banked engines keep args-in-place but link externally). *)
let relink_convention engine =
  if Fpc_core.Engine.args_in_place engine then
    Fpc_compiler.Convention.banked ~linkage:Fpc_mesa.Image.External ()
  else Fpc_compiler.Convention.external_

let relink_image ~engine =
  let convention = relink_convention engine in
  match Fpc_compiler.Compile.image ~convention relink_source with
  | Ok image -> image
  | Error m -> failwith ("E18 relink compile: " ^ m)

let lv_index_of image =
  let ii = Fpc_mesa.Image.find_instance image "Main" in
  let imports = ii.Fpc_mesa.Image.ii_imports in
  let rec go i =
    if i >= Array.length imports then failwith "E18: import not found"
    else if imports.(i) = ("Lib", "inc") then i
    else go (i + 1)
  in
  go 0

let run_with_relink ~pause runner image (st : Fpc_core.State.t) =
  runner ~max_steps:pause st;
  (match st.status with
  | Fpc_core.State.Trapped Fpc_core.State.Step_limit ->
    st.status <- Fpc_core.State.Running
  | _ -> ());
  (match st.simple with
  | Some sl ->
    Fpc_core.Simple_links.rebind sl image ~instance:"Main"
      ~lv_index:(lv_index_of image) ~target:("Lib", "trip")
  | None ->
    Fpc_mesa.Linker.rebind_lv image ~instance:"Main"
      ~lv_index:(lv_index_of image) ~target:("Lib", "trip"));
  runner ~max_steps:2_000_000 st

let relink_pauses = [ 35; 120; 480 ]

(* Run directly on the compiled image (no clone): the rebind must poke
   the memory the state is actually running over, or the probe proves
   nothing. *)
let relink_boot ~image ~engine =
  Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main" ~args:[]
    ()

let relink_mismatches engine =
  let plain =
    (* the un-relinked answer — the probe only counts if relinking
       visibly changes it *)
    let image = relink_image ~engine in
    let st = relink_boot ~image ~engine in
    Fpc_interp.Interp.run st;
    Fpc_core.State.output st
  in
  List.fold_left
    (fun acc pause ->
      let reference =
        let image = relink_image ~engine in
        let st = relink_boot ~image ~engine in
        run_with_relink ~pause
          (fun ~max_steps st -> Fpc_interp.Interp.run ~max_steps st)
          image st;
        fingerprint st
      in
      let image = relink_image ~engine in
      let st = relink_boot ~image ~engine in
      let tr, _ = Fpc_tier.Tier.of_image image in
      run_with_relink ~pause
        (fun ~max_steps st -> Fpc_tier.Tier.run ~max_steps tr st)
        image st;
      (* Mesa engines bake the LV/GFT/code-base words and depend on the
         relink observer to tear fusion down; I1's fused sites re-check
         the live link table on every call, so no global invalidation is
         needed (or expected) there. *)
      let deopt_ok =
        if engine.Fpc_core.Engine.kind = Fpc_core.Engine.Mesa then
          not (Fpc_tier.Tier.fusion_valid tr)
        else Fpc_tier.Tier.fusion_valid tr
      in
      let landed = Fpc_core.State.output st <> plain in
      acc + (if fingerprint st = reference && deopt_ok && landed then 0 else 1))
    0 relink_pauses

(* ---- the call-dense kernels: coverage, laziness, speedup ---- *)

type perf = {
  coverage : float;  (** fused calls / calls, cold lazy run *)
  lazy_cold : int;  (** procedures translated on first entry *)
  lazy_warm : int;  (** must be 0: the attachment is shared *)
  translated : int;
  procs : int;
  speedup : float;
}

let measure_kernel ~engine program =
  let convention = Fpc_compiler.Convention.for_engine engine in
  let image = Harness.image_of ~convention ~program () in
  let tr, _ = Fpc_tier.Tier.of_image image in
  let cold = boot ~image ~engine in
  Fpc_tier.Tier.run tr cold;
  Harness.must_halt cold;
  let warm = boot ~image ~engine in
  Fpc_tier.Tier.run tr warm;
  Harness.must_halt warm;
  let m = cold.metrics in
  let interp_s = time_runs ~image ~engine Fpc_interp.Interp.run in
  let tier_s = time_runs ~image ~engine (Fpc_tier.Tier.run tr) in
  {
    coverage = Harness.ratio m.tier_fused_calls m.calls;
    lazy_cold = m.tier_lazy_translations;
    lazy_warm = warm.metrics.tier_lazy_translations;
    translated = Fpc_tier.Tier.procs_translated tr;
    procs = Fpc_tier.Tier.procs tr;
    speedup = (if tier_s > 0.0 then interp_s /. tier_s else 0.0);
  }

let run () =
  let diff =
    Tablefmt.create
      ~title:"Fused tier vs interpreter: differential (per engine)"
      ~columns:
        [
          ("engine", Tablefmt.Left);
          ("suite", Tablefmt.Right);
          ("synthetic", Tablefmt.Right);
          ("relink-deopt", Tablefmt.Right);
          ("mismatches", Tablefmt.Right);
        ]
  in
  let total_mismatches = ref 0 in
  List.iter
    (fun (name, engine) ->
      let s = suite_mismatches engine in
      let y = synthetic_mismatches engine in
      let r = relink_mismatches engine in
      total_mismatches := !total_mismatches + s + y + r;
      Tablefmt.add_row diff
        [
          name;
          Printf.sprintf "%d progs" (List.length Fpc_workload.Programs.names);
          Printf.sprintf "%d seeds" (List.length synthetic_seeds);
          Printf.sprintf "%d pauses" (List.length relink_pauses);
          Tablefmt.cell_int (s + y + r);
        ])
    Harness.engines;
  Tablefmt.add_note diff
    "each relink run pauses mid-loop, re-points Main's Lib.inc import at \
     Lib.trip, and must finish bit-identical to an interpreter run relinked \
     at the same step; Mesa engines must also invalidate their baked fused \
     resolutions (I1's fused sites re-check the live link table per call)";
  let perf =
    Tablefmt.create
      ~title:"Call-dense kernels: fused-call coverage and host speedup"
      ~columns:
        ([ ("kernel", Tablefmt.Left) ]
        @ List.concat_map
            (fun (n, _) -> [ (n ^ " fused", Tablefmt.Right); (n, Tablefmt.Right) ])
            Harness.engines)
  in
  let sums = Array.make (List.length Harness.engines) 0.0 in
  let cov_sum = ref 0.0 and cov_n = ref 0 in
  let lazy_cold_total = ref 0 and lazy_warm_total = ref 0 in
  let kernels = Fpc_workload.Programs.call_dense in
  List.iter
    (fun program ->
      let cells =
        List.concat
          (List.mapi
             (fun i (_, engine) ->
               let p = measure_kernel ~engine program in
               sums.(i) <- sums.(i) +. p.speedup;
               cov_sum := !cov_sum +. p.coverage;
               incr cov_n;
               lazy_cold_total := !lazy_cold_total + p.lazy_cold;
               lazy_warm_total := !lazy_warm_total + p.lazy_warm;
               [
                 Printf.sprintf "%.0f%%" (100.0 *. p.coverage);
                 Printf.sprintf "%.2fx" p.speedup;
               ])
             Harness.engines)
      in
      Tablefmt.add_row perf (program :: cells))
    kernels;
  let n = float_of_int (List.length kernels) in
  let speedups =
    List.mapi (fun i (name, _) -> (name, sums.(i) /. n)) Harness.engines
  in
  Tablefmt.add_note perf
    (Printf.sprintf
       "lazy translation: %d procedures translated on first entry across the \
        cold runs, %d on warm re-runs of the shared attachment"
       !lazy_cold_total !lazy_warm_total);
  Tablefmt.add_note perf
    "speedups are host wall clock (median of runs, translate excluded); the \
     per-call frame, argument and meter work is simulated identically on \
     both tiers, which caps call-dense gains below the loop kernels' — and \
     I4's banks already make the interpreter's locals cheap, so its \
     denominator is the fastest of the four";
  {
    Exp.id = "E18";
    key = "calls";
    title = "Cross-call fusion: leaf calls spliced into superinstructions";
    paper_claim =
      "there is a procedure call (and corresponding return) about every 20 \
       instructions executed, i.e., about every 30 microseconds (\xC2\xA72); \
       with either linkage the program behaves identically (except for \
       space and speed) (\xC2\xA76)";
    tables = [ Tablefmt.render diff; Tablefmt.render perf ];
    headlines =
      ([
         ("mismatches", float_of_int !total_mismatches);
         ( "fused_call_coverage_pct",
           100.0 *. !cov_sum /. float_of_int (max 1 !cov_n) );
         ("lazy_warm_translations", float_of_int !lazy_warm_total);
       ]
      @ List.map
          (fun (n, s) -> ("speedup_" ^ String.lowercase_ascii n, s))
          speedups);
  }
