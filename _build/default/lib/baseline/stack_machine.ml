open Fpc_machine

type config = { saved_registers : int; linkage_words : int }

let default_config = { saved_registers = 4; linkage_words = 4 }

type activation = { a_base : int; a_words : int }

type t = {
  config : config;
  mem : Memory.t;
  stack_base : int;
  stack_limit : int;
  mutable sp : int;
  mutable frames : activation list;
  mutable calls : int;
  mutable high_water : int;
}

exception Stack_exhausted

let create ?(config = default_config) ~mem ~stack_base ~stack_limit () =
  if stack_limit > Memory.size mem then invalid_arg "Stack_machine.create: beyond memory";
  {
    config;
    mem;
    stack_base;
    stack_limit;
    sp = stack_base;
    frames = [];
    calls = 0;
    high_water = 0;
  }

let words_per_call _t config ~nargs ~locals_words =
  ignore locals_words;
  nargs + config.linkage_words + config.saved_registers

let call t ~nargs ~locals_words =
  let pushed = nargs + t.config.linkage_words + t.config.saved_registers in
  let total = pushed + locals_words in
  if t.sp + total > t.stack_limit then raise Stack_exhausted;
  let base = t.sp in
  (* Every pushed word is a storage write: arguments, then PC/FP/AP/mask,
     then the callee's saved registers.  Locals are allocated but not
     initialised (SP bump only). *)
  for i = 0 to pushed - 1 do
    Memory.write t.mem (base + i) (i land 0xFFFF)
  done;
  t.sp <- base + total;
  t.frames <- { a_base = base; a_words = total } :: t.frames;
  t.calls <- t.calls + 1;
  t.high_water <- max t.high_water (t.sp - t.stack_base)

let return_ t =
  match t.frames with
  | [] -> invalid_arg "Stack_machine.return_: empty stack"
  | a :: rest ->
    (* Restore PC/FP/AP and the saved registers: storage reads. *)
    for i = 0 to t.config.linkage_words + t.config.saved_registers - 1 do
      ignore (Memory.read t.mem (a.a_base + i))
    done;
    t.sp <- a.a_base;
    t.frames <- rest

let depth t = List.length t.frames
let sp t = t.sp
let high_water t = t.high_water
let calls t = t.calls

type activity_plan = { activities : int; max_depth : int; mean_frame_words : int }

let reserve_activity p = p.activities * p.max_depth * p.mean_frame_words
