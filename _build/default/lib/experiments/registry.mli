(** The experiment registry: every table and figure of the paper, keyed by
    the bench-target name used by [bench/main.exe] and
    [bin/fpc.exe experiment]. *)

val all : (string * (unit -> Exp.result)) list
(** In E1..E15 order (E15 is the ablation extension). *)

val find : string -> (unit -> Exp.result) option
(** Look up by key (e.g. "bank_overflow") or id (e.g. "E6",
    case-insensitive). *)

val keys : string list
