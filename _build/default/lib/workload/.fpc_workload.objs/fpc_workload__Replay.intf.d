lib/workload/replay.mli: Fpc_baseline Fpc_frames Fpc_regbank Synthetic
