lib/workload/synthetic.ml: Distributions Fpc_util List Prng
