type t = Nil | Frame of int | Proc of { gfi : int; ev : int }

let max_gfi = 1023
let max_ev = 31

let pack = function
  | Nil -> 0
  | Frame lf ->
    if lf <= 0 || lf land 3 <> 0 || lf > 0xFFFF then
      invalid_arg (Printf.sprintf "Descriptor.pack: bad frame address %d" lf);
    lf
  | Proc { gfi; ev } ->
    if gfi < 1 || gfi > max_gfi then
      invalid_arg (Printf.sprintf "Descriptor.pack: gfi %d out of range" gfi);
    if ev < 0 || ev > max_ev then
      invalid_arg (Printf.sprintf "Descriptor.pack: ev %d out of range" ev);
    (gfi lsl 6) lor (ev lsl 1) lor 1

let unpack w =
  if w = 0 then Nil
  else if w land 1 = 1 then Proc { gfi = (w lsr 6) land 0x3FF; ev = (w lsr 1) land 0x1F }
  else if w land 3 = 0 then Frame w
  else invalid_arg (Printf.sprintf "Descriptor.unpack: malformed context word 0x%04X" w)

let is_frame_word w = w <> 0 && w land 3 = 0

(* Packed-word accessors for the transfer hot path: classify and split a
   context word without materialising the variant (whose [Proc]/[Frame]
   blocks would be a per-call allocation). *)
let word_nil = 0
let word_proc = 1
let word_frame = 2
let word_malformed = -1

let word_kind w =
  if w = 0 then word_nil
  else if w land 1 = 1 then word_proc
  else if w land 3 = 0 then word_frame
  else word_malformed

let word_gfi w = (w lsr 6) land 0x3FF
let word_ev w = (w lsr 1) land 0x1F
let equal a b = a = b

let to_string = function
  | Nil -> "NIL"
  | Frame lf -> Printf.sprintf "Frame@%d" lf
  | Proc { gfi; ev } -> Printf.sprintf "Proc{gfi=%d, ev=%d}" gfi ev
