(** Minimal JSON construction and printing.

    The service layer ([Fpc_svc]), [fpc serve] and the benchmark
    perf-trajectory file all emit JSON; the toolchain deliberately has no
    external JSON dependency, so this tiny emitter is the single shared
    path.  Output is compact (no insignificant whitespace) and field order
    is exactly the construction order, so emitted lines are deterministic
    and diffable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, no trailing newline.  Strings are escaped per RFC
    8259 (quote, backslash, and control characters).  Floats render as the
    shortest decimal form that round-trips; non-finite floats render as
    [null] (JSON has no representation for them). *)

val to_buffer : Buffer.t -> t -> unit

val pretty : t -> string
(** Two-space-indented rendering, trailing newline included — for files
    meant to be read by humans (e.g. [BENCH_results.json]). *)
