  $ fpc run fib 2>/dev/null
  $ fpc run mixed -e i4 2>/dev/null
  $ fpc suite | head -4
  $ cat > tiny.fpc <<'SRC'
  > MODULE Main;
  > PROC main() =
  >   OUTPUT 6 * 7;
  > END;
  > END;
  > SRC
  $ fpc disasm tiny.fpc
  $ fpc run tiny.fpc 2>/dev/null
  $ fpc run no_such_program 2>&1 | head -1
  $ fpc experiment E10 2>/dev/null | head -2
