lib/frames/size_class.mli:
