open Fpc_machine
open Fpc_frames
open Fpc_mesa

exception Machine_trap of State.trap_reason

(* ------------------------------------------------------------------ *)
(* Transfer-event instrumentation.  A snapshot is taken where the cost
   classification baseline is taken, so an event's [fast] flag and deltas
   agree exactly with [classify]; every [metrics] increment emits exactly
   one event, which is what lets a profile's transfer counts equal the
   machine's.  All of it is skipped — one option match — when no tracer is
   installed, and the hot call/return paths are written without closures
   so an untraced transfer performs no OCaml allocation at all. *)

type snap = { s_pc : int; s_cycles : int; s_refs : int }

let snap (st : State.t) =
  match st.State.tracer with
  | None -> None
  | Some _ ->
    Some { s_pc = st.pc_abs; s_cycles = Cost.cycles st.cost; s_refs = Cost.mem_refs st.cost }

let emit_xfer (st : State.t) s kind ~target =
  match (st.State.tracer, s) with
  | Some sink, Some s ->
    let cycles = Cost.cycles st.cost and refs = Cost.mem_refs st.cost in
    Fpc_trace.Sink.emit_fields sink ~kind ~pc:s.s_pc ~target
      ~depth:st.metrics.call_depth ~fast:(refs = s.s_refs) ~cycles
      ~mem_refs:refs ~d_cycles:(cycles - s.s_cycles)
      ~d_mem_refs:(refs - s.s_refs)
  | _ -> ()

(* Run [body]; emit [kind] even when it escapes by exception (a trap
   mid-transfer), so event counts stay one-to-one with the metrics.  Only
   the cold transfers (coroutines, switches, traps) use this closure form. *)
let guarded st s kind body =
  match body () with
  | () -> emit_xfer st s kind ~target:st.State.pc_abs
  | exception e ->
    emit_xfer st s kind ~target:(-1);
    raise e

let ladder (st : State.t) = Alloc_vector.ladder st.allocator
let payload_of_fsi st fsi = Size_class.block_words (ladder st) fsi - Frame.overhead_words

let simple (st : State.t) =
  match st.simple with
  | Some s -> s
  | None -> invalid_arg "Transfer: Simple engine state missing"

(* ------------------------------------------------------------------ *)
(* Frame allocation: the §7.1 processor free-frame stack serves classes
   up to [ff_fsi] with no storage references ("in parallel with the rest
   of an XFER"); everything else takes the AV (or, under I1, software)
   path.  The result is packed [(lf lsl 8) lor granted_fsi] — returning a
   pair would be a per-call allocation. *)

let alloc_via_av (st : State.t) fsi =
  match Alloc_vector.alloc_fsi st.allocator ~cost:st.cost ~fsi with
  | lf -> (lf lsl 8) lor fsi
  | exception Alloc_vector.Out_of_frame_heap ->
    raise (Machine_trap State.Frame_heap_exhausted)

let alloc_frame (st : State.t) ~fsi =
  let m = st.metrics in
  m.frame_allocs <- m.frame_allocs + 1;
  if st.ff_fsi >= 0 && fsi <= st.ff_fsi then
    if st.ff_top > 0 then begin
      st.ff_top <- st.ff_top - 1;
      let lf = st.free_frames.(st.ff_top) in
      m.ff_hits <- m.ff_hits + 1;
      (match st.State.tracer with
      | None -> ()
      | Some _ ->
        State.emit_sub st
          (Fpc_trace.Event.Frame_alloc
             {
               words = Size_class.block_words (ladder st) st.ff_fsi;
               via_ff = true;
               software = false;
             }));
      (lf lsl 8) lor st.ff_fsi
    end
    else begin
      m.ff_misses <- m.ff_misses + 1;
      alloc_via_av st st.ff_fsi
    end
  else alloc_via_av st fsi

let free_frame (st : State.t) ~lf =
  st.metrics.frame_frees <- st.metrics.frame_frees + 1;
  (match st.banks with
  | Some b -> Fpc_regbank.Bank_file.release_frame b ~lf
  | None -> ());
  (* The processor knows the class of frames it hands out, so returning a
     common-size frame to its free-frame stack costs nothing. *)
  let fsi = Frame.peek_fsi st.mem ~lf in
  if st.ff_fsi >= 0 && fsi = st.ff_fsi && st.ff_top < Array.length st.free_frames
  then begin
    st.free_frames.(st.ff_top) <- lf;
    st.ff_top <- st.ff_top + 1;
    match st.State.tracer with
    | None -> ()
    | Some _ ->
      State.emit_sub st
        (Fpc_trace.Event.Frame_free
           { words = Size_class.block_words (ladder st) fsi; to_ff = true })
  end
  else Alloc_vector.free st.allocator ~cost:st.cost ~lf

(* ------------------------------------------------------------------ *)
(* Deferred overhead stores (§6).  While a call's return information sits
   in the IFU return stack, neither the caller's PC nor the callee's
   returnLink/globalFrame have been stored; flushing performs exactly the
   paper's recipe: "the frame pointer LF goes into the returnLink
   component of the next higher frame, and the PC goes into the PC
   component of LF.  The global frame pointer can be discarded, since it
   can be recovered from the local frame" — which is why we must store it
   into the frame here. *)

let cb_of_entry (st : State.t) (e : Fpc_ifu.Return_stack.entry) =
  if e.r_cb >= 0 then e.r_cb else Memory.read st.mem e.r_gf

let flush_rstack (st : State.t) =
  match st.rstack with
  | None -> ()
  | Some rs ->
    let above = ref st.lf in
    Fpc_ifu.Return_stack.flush rs ~f:(fun e ->
        (* [Descriptor.pack (Frame lf)] is [lf] itself. *)
        Frame.write_return_link st.mem ~lf:!above e.r_lf;
        let cb = cb_of_entry st e in
        Frame.write_pc st.mem ~lf:e.r_lf (e.r_pc_abs - (2 * cb));
        Frame.write_global_frame st.mem ~lf:e.r_lf e.r_gf;
        above := e.r_lf)

let deferred (st : State.t) = st.rstack <> None

(* Overflow: spill only the oldest entry — the recent window stays hot, so
   LIFO-local oscillation (the common case) keeps riding the fast path.
   The spilled entry's deferred stores go to storage now; the frame just
   above it is the second-oldest entry (or the running frame if the stack
   had a single entry). *)
let spill_oldest (st : State.t) rs =
  let above_lf =
    if Fpc_ifu.Return_stack.length rs >= 2 then
      (Fpc_ifu.Return_stack.second_oldest_slot rs).Fpc_ifu.Return_stack.r_lf
    else st.lf
  in
  let e = Fpc_ifu.Return_stack.drop_oldest_slot rs in
  Frame.write_return_link st.mem ~lf:above_lf e.r_lf;
  let cb = cb_of_entry st e in
  Frame.write_pc st.mem ~lf:e.r_lf (e.r_pc_abs - (2 * cb));
  Frame.write_global_frame st.mem ~lf:e.r_lf e.r_gf

(* Leaving the current context by a slow transfer: save the PC (always)
   and, in deferred mode, the globalFrame word that eager entry would have
   written at creation. *)
let suspend_current (st : State.t) =
  let cb = State.ensure_cb st in
  Frame.write_pc st.mem ~lf:st.lf (st.pc_abs - (2 * cb));
  if deferred st then Frame.write_global_frame st.mem ~lf:st.lf st.gf

(* ------------------------------------------------------------------ *)
(* Destination resolution.

   The resolver writes the callee's registers into the machine's scratch
   destination registers ([xr_gf], [xr_cb], [xr_pc], [xr_fsi]) instead of
   returning a record — the per-call record was the last allocation on the
   transfer path.  Callers name the resolution they want with a tag:

     [tag_local]      a = entry-vector index
     [tag_desc]       a = gfi, b = five-bit ev
     [tag_import]     a = link-vector index (Simple engine only)
     [tag_prefilled]  scratch already written (DIRECTCALL header)        *)

let tag_local = 0
let tag_desc = 1
let tag_import = 2
let tag_prefilled = 3

let resolve_simple_pair (st : State.t) p =
  let abs = Simple_links.pair_abs p and gf = Simple_links.pair_gf p in
  let cb = Memory.read st.mem gf in
  let fsi = Memory.read_code_byte st.mem ~code_base:cb ~pc:(abs - (2 * cb)) in
  st.xr_gf <- gf;
  st.xr_cb <- cb;
  st.xr_pc <- abs + 1;
  st.xr_fsi <- fsi

let resolve_into (st : State.t) ~tag ~a ~b =
  if tag = tag_prefilled then ()
  else if tag = tag_desc then
    match st.engine.Engine.kind with
    | Engine.Mesa ->
      (* Figure 1's chain: GFT -> global frame (code base) -> EV -> code. *)
      let w = Gft.read_entry_word st.image.Image.gft ~cost_mem_read:true ~gfi:a in
      let gf = w land 0xFFFC and bias = w land 3 in
      let cb = Memory.read st.mem gf in
      let entry_off = Memory.read st.mem (cb + (bias * 32) + b) in
      let fsi = Memory.read_code_byte st.mem ~code_base:cb ~pc:entry_off in
      st.xr_gf <- gf;
      st.xr_cb <- cb;
      st.xr_pc <- (2 * cb) + entry_off + 1;
      st.xr_fsi <- fsi
    | Engine.Simple ->
      resolve_simple_pair st
        (Simple_links.resolve_descriptor (simple st) st.image ~gfi:a ~ev:b)
  else if tag = tag_local then
    match st.engine.Engine.kind with
    | Engine.Mesa ->
      (* "This kind of call keeps the same environment and code base, and
         has only one level of indirection" (§5.1). *)
      let cb = State.ensure_cb st in
      let entry_off = Memory.read st.mem (cb + a) in
      let fsi = Memory.read_code_byte st.mem ~code_base:cb ~pc:entry_off in
      st.xr_gf <- st.gf;
      st.xr_cb <- cb;
      st.xr_pc <- (2 * cb) + entry_off + 1;
      st.xr_fsi <- fsi
    | Engine.Simple ->
      resolve_simple_pair st
        (Simple_links.resolve_own_by_gf (simple st) st.image ~gf:st.gf ~ev_index:a)
  else
    resolve_simple_pair st
      (Simple_links.resolve_import_by_gf (simple st) st.image ~gf:st.gf ~lv_index:a)

(* ------------------------------------------------------------------ *)
(* Entering a procedure: the common creation-context behaviour of §3's
   WHILE TRUE DO CreateNewContext; XFER loop, specialised as every real
   implementation must.  Consumes the scratch destination registers. *)

let enter_proc (st : State.t) ~ret_word ~fast =
  let packed = alloc_frame st ~fsi:st.xr_fsi in
  let lf_new = packed lsr 8 and granted_fsi = packed land 0xFF in
  if not fast then begin
    Frame.write_return_link st.mem ~lf:lf_new ret_word;
    Frame.write_global_frame st.mem ~lf:lf_new st.xr_gf
  end;
  (match st.banks with
  | Some banks ->
    (* §7.2: the stack bank is renamed to shadow the new frame, so the
       argument record becomes the first locals with no data movement.
       The raw stack buffer is passed (no copy); only then is the stack
       emptied. *)
    let depth = Eval_stack.depth st.stack in
    st.metrics.arg_words_renamed <- st.metrics.arg_words_renamed + depth;
    Fpc_regbank.Bank_file.on_call_n banks ~nargs:depth ~callee_lf:lf_new
      ~payload_words:(payload_of_fsi st granted_fsi)
      ~args:(Eval_stack.buffer st.stack);
    Eval_stack.clear st.stack
  | None ->
    (* The argument record stays on the evaluation stack; the callee's
       prologue stores it into locals — §5.2's "wasteful" path. *)
    st.metrics.arg_words_stored <- st.metrics.arg_words_stored + Eval_stack.depth st.stack);
  st.return_ctx <- ret_word;
  st.lf <- lf_new;
  st.gf <- st.xr_gf;
  st.cb <- st.xr_cb;
  st.pc_abs <- st.xr_pc;
  Cost.jump st.cost

let resume_frame (st : State.t) ~dest_lf =
  let pc = Frame.read_pc st.mem ~lf:dest_lf in
  let gf = Frame.read_global_frame st.mem ~lf:dest_lf in
  let cb = Memory.read st.mem gf in
  st.lf <- dest_lf;
  st.gf <- gf;
  st.cb <- cb;
  st.pc_abs <- (2 * cb) + pc;
  (match st.banks with
  | Some b -> Fpc_regbank.Bank_file.ensure_bank b ~lf:dest_lf
  | None -> ());
  Cost.jump st.cost

(* Coroutine resume: transfer to an existing frame, leaving the current
   one alive (F2/F3). *)
let transfer_to_frame (st : State.t) ~dest_lf =
  flush_rstack st;
  (match st.banks with
  | Some b -> Fpc_regbank.Bank_file.on_leave b ~lf:st.lf
  | None -> ());
  suspend_current st;
  let me = st.lf in
  resume_frame st ~dest_lf;
  st.return_ctx <- me

(* ------------------------------------------------------------------ *)
(* Calls. *)

let classify (st : State.t) before =
  if Cost.mem_refs st.cost = before then
    st.metrics.fast_transfers <- st.metrics.fast_transfers + 1
  else st.metrics.slow_transfers <- st.metrics.slow_transfers + 1

let do_call (st : State.t) ~before ~s ~tag ~a ~b =
  st.metrics.calls <- st.metrics.calls + 1;
  State.note_transfer_direction st 1;
  try
    (match st.banks with
    | Some bk -> Fpc_regbank.Bank_file.on_leave bk ~lf:st.lf
    | None -> ());
    (* [Descriptor.pack (Frame st.lf)] is [st.lf] itself. *)
    let ret_word = st.lf in
    (match st.rstack with
    | Some rs ->
      if Fpc_ifu.Return_stack.is_full rs then spill_oldest st rs;
      (* Capture the caller's registers before resolution: resolving a
         local destination may materialise CB (mutating [st.cb]), and the
         entry must record the register file as it was at the call. *)
      let e_lf = st.lf and e_gf = st.gf and e_cb = st.cb and e_pc = st.pc_abs in
      let e_bank =
        match st.banks with
        | Some bk -> Fpc_regbank.Bank_file.bank_index bk ~lf:st.lf
        | None -> Fpc_ifu.Return_stack.no_bank
      in
      resolve_into st ~tag ~a ~b;
      Fpc_ifu.Return_stack.push rs ~lf:e_lf ~gf:e_gf ~cb:e_cb ~pc_abs:e_pc
        ~bank:e_bank;
      enter_proc st ~ret_word ~fast:true
    | None ->
      resolve_into st ~tag ~a ~b;
      suspend_current st;
      enter_proc st ~ret_word ~fast:false);
    classify st before;
    emit_xfer st s Fpc_trace.Event.Call ~target:st.pc_abs
  with e ->
    emit_xfer st s Fpc_trace.Event.Call ~target:(-1);
    raise e

let call_external (st : State.t) ~lv_index =
  let before = Cost.mem_refs st.cost in
  let s = snap st in
  match st.engine.Engine.kind with
  | Engine.Simple -> do_call st ~before ~s ~tag:tag_import ~a:lv_index ~b:0
  | Engine.Mesa ->
    (* The link vector lives just below the global frame: entry i is the
       word at gf - 1 - i, so one reference reaches the context. *)
    let lv_word = Memory.read st.mem (st.gf - 1 - lv_index) in
    let k = Descriptor.word_kind lv_word in
    if k = Descriptor.word_proc then
      do_call st ~before ~s ~tag:tag_desc ~a:(Descriptor.word_gfi lv_word)
        ~b:(Descriptor.word_ev lv_word)
    else if k = Descriptor.word_frame then begin
      (* A rebound link naming an existing context: the destination makes
         this a coroutine resume, not a call — F3. *)
      st.metrics.other_xfers <- st.metrics.other_xfers + 1;
      guarded st s Fpc_trace.Event.Coroutine (fun () ->
          transfer_to_frame st ~dest_lf:lv_word;
          classify st before)
    end
    else raise (Machine_trap State.Nil_context)

let call_local (st : State.t) ~ev_index =
  let before = Cost.mem_refs st.cost in
  let s = snap st in
  do_call st ~before ~s ~tag:tag_local ~a:ev_index ~b:0

let call_direct (st : State.t) ~target_abs =
  let before = Cost.mem_refs st.cost in
  let s = snap st in
  (* The header (SETGLOBALFRAME gf; ALLOCATEFRAME fsi) is part of the
     instruction stream.  With an IFU return stack the prefetcher has
     already consumed it; without one, the machine pays the fetches. *)
  let defer = deferred st in
  let b0 =
    if defer then Memory.peek_code_byte st.mem ~code_base:0 ~pc:target_abs
    else Memory.read_code_byte st.mem ~code_base:0 ~pc:target_abs
  in
  let b1 =
    if defer then Memory.peek_code_byte st.mem ~code_base:0 ~pc:(target_abs + 1)
    else Memory.read_code_byte st.mem ~code_base:0 ~pc:(target_abs + 1)
  in
  let b2 =
    if defer then Memory.peek_code_byte st.mem ~code_base:0 ~pc:(target_abs + 2)
    else Memory.read_code_byte st.mem ~code_base:0 ~pc:(target_abs + 2)
  in
  st.xr_gf <- (b0 lsl 8) lor b1;
  st.xr_cb <- State.no_cb;
  st.xr_pc <- target_abs + 3;
  st.xr_fsi <- b2;
  do_call st ~before ~s ~tag:tag_prefilled ~a:0 ~b:0

(* ------------------------------------------------------------------ *)
(* Processes. *)

let resume_process (st : State.t) (p : State.process) =
  st.current_pid <- p.p_id;
  (* State-vector restore: the saved evaluation stack returns from
     storage. *)
  Array.iter (fun _ -> Cost.mem_read st.cost) p.p_stack;
  Eval_stack.replace st.stack p.p_stack;
  (* the returnContext register rides the state vector (its save/restore
     is folded into the switch cost, like LF) so a switch is transparent
     even between an XFER resumption and the RETCTX read *)
  st.return_ctx <- p.p_rctx;
  resume_frame st ~dest_lf:p.p_lf

let end_process (st : State.t) =
  st.metrics.procs_ended <- st.metrics.procs_ended + 1;
  match Queue.take_opt st.ready with
  | None -> st.status <- State.Halted
  | Some p ->
    st.metrics.other_xfers <- st.metrics.other_xfers + 1;
    let s = snap st in
    guarded st s Fpc_trace.Event.Switch (fun () -> resume_process st p)

(* ------------------------------------------------------------------ *)
(* RETURN: free the frame, returnContext := NIL, XFER[returnLink]. *)

(* The general scheme, taken when the IFU return stack is absent or empty.
   The process-ending return emits before [end_process] so the event
   stream reads Return-then-Switch, matching what happened. *)
let return_slow (st : State.t) ~s ~before ~returning =
  let rl =
    try Frame.read_return_link st.mem ~lf:returning
    with e ->
      emit_xfer st s Fpc_trace.Event.Return ~target:(-1);
      raise e
  in
  if rl = 0 then begin
    (try free_frame st ~lf:returning
     with e ->
       emit_xfer st s Fpc_trace.Event.Return ~target:(-1);
       raise e);
    emit_xfer st s Fpc_trace.Event.Return ~target:(-1);
    end_process st;
    classify st before
  end
  else
    try
      let k = Descriptor.word_kind rl in
      if k = Descriptor.word_frame then begin
        free_frame st ~lf:returning;
        st.return_ctx <- 0;
        resume_frame st ~dest_lf:rl
      end
      else if k = Descriptor.word_proc then begin
        (* A creation context as return link (F3): returning constructs a
           fresh activation of it. *)
        free_frame st ~lf:returning;
        st.return_ctx <- 0;
        resolve_into st ~tag:tag_desc ~a:(Descriptor.word_gfi rl)
          ~b:(Descriptor.word_ev rl);
        enter_proc st ~ret_word:0 ~fast:false
      end
      else raise (Machine_trap State.Nil_context);
      classify st before;
      emit_xfer st s Fpc_trace.Event.Return ~target:st.pc_abs
    with e ->
      emit_xfer st s Fpc_trace.Event.Return ~target:(-1);
      raise e

let return_ (st : State.t) =
  let s = snap st in
  st.metrics.returns <- st.metrics.returns + 1;
  State.note_transfer_direction st (-1);
  let before = Cost.mem_refs st.cost in
  let returning = st.lf in
  match st.rstack with
  | Some rs when Fpc_ifu.Return_stack.try_pop rs -> (
    try
      free_frame st ~lf:returning;
      let e = Fpc_ifu.Return_stack.popped rs in
      st.lf <- e.r_lf;
      st.gf <- e.r_gf;
      st.cb <- e.r_cb;
      st.pc_abs <- e.r_pc_abs;
      st.return_ctx <- 0;
      (match st.banks with
      | Some b -> Fpc_regbank.Bank_file.ensure_bank b ~lf:e.r_lf
      | None -> ());
      Cost.jump st.cost;
      classify st before;
      emit_xfer st s Fpc_trace.Event.Return ~target:st.pc_abs
    with e ->
      emit_xfer st s Fpc_trace.Event.Return ~target:(-1);
      raise e)
  | _ -> return_slow st ~s ~before ~returning

(* ------------------------------------------------------------------ *)
(* Raw XFER. *)

let xfer (st : State.t) ~dest_word =
  st.metrics.other_xfers <- st.metrics.other_xfers + 1;
  let s = snap st in
  guarded st s Fpc_trace.Event.Coroutine (fun () ->
      let k = Descriptor.word_kind dest_word in
      if k = Descriptor.word_frame then transfer_to_frame st ~dest_lf:dest_word
      else if k = Descriptor.word_proc then begin
        flush_rstack st;
        (match st.banks with
        | Some b -> Fpc_regbank.Bank_file.on_leave b ~lf:st.lf
        | None -> ());
        suspend_current st;
        let ret_word = st.lf in
        resolve_into st ~tag:tag_desc ~a:(Descriptor.word_gfi dest_word)
          ~b:(Descriptor.word_ev dest_word);
        enter_proc st ~ret_word ~fast:false
      end
      else raise (Machine_trap State.Nil_context))

(* A FORK grows the live-process set (the running process plus the ready
   queue); nothing else does, so the peak is tracked here alone. *)
let note_fork (st : State.t) =
  let m = st.metrics in
  m.procs_forked <- m.procs_forked + 1;
  let live = 1 + Queue.length st.ready in
  if live > m.peak_live_procs then m.peak_live_procs <- live

let fork_body (st : State.t) ~nargs =
  let desc = Eval_stack.pop st.stack in
  let args = Array.make nargs 0 in
  for i = nargs - 1 downto 0 do
    args.(i) <- Eval_stack.pop st.stack
  done;
  let k = Descriptor.word_kind desc in
  if k = Descriptor.word_frame then begin
    Queue.add
      { State.p_id = st.next_pid; p_lf = desc; p_stack = args; p_rctx = 0 }
      st.ready;
    st.next_pid <- st.next_pid + 1;
    note_fork st
  end
  else if k = Descriptor.word_proc then begin
    resolve_into st ~tag:tag_desc ~a:(Descriptor.word_gfi desc)
      ~b:(Descriptor.word_ev desc);
    let packed = alloc_frame st ~fsi:st.xr_fsi in
    let lf_new = packed lsr 8 in
    Frame.write_return_link st.mem ~lf:lf_new 0;
    Frame.write_global_frame st.mem ~lf:lf_new st.xr_gf;
    let cb = if st.xr_cb >= 0 then st.xr_cb else Memory.read st.mem st.xr_gf in
    Frame.write_pc st.mem ~lf:lf_new (st.xr_pc - (2 * cb));
    let p_stack =
      if Engine.args_in_place st.engine then begin
        Array.iteri (fun i v -> Memory.write st.mem (lf_new + i) v) args;
        [||]
      end
      else args
    in
    Queue.add
      { State.p_id = st.next_pid; p_lf = lf_new; p_stack; p_rctx = 0 }
      st.ready;
    st.next_pid <- st.next_pid + 1;
    note_fork st
  end
  else raise (Machine_trap State.Nil_context)

(* FORK queues a context without transferring control, so its event
   carries no destination. *)
let fork (st : State.t) ~nargs =
  st.metrics.other_xfers <- st.metrics.other_xfers + 1;
  let s = snap st in
  match fork_body st ~nargs with
  | () -> emit_xfer st s Fpc_trace.Event.Fork ~target:(-1)
  | exception e ->
    emit_xfer st s Fpc_trace.Event.Fork ~target:(-1);
    raise e

let yield (st : State.t) =
  if not (Queue.is_empty st.ready) then begin
    st.metrics.other_xfers <- st.metrics.other_xfers + 1;
    let s = snap st in
    guarded st s Fpc_trace.Event.Switch (fun () ->
        flush_rstack st;
        (match st.banks with
        | Some b -> Fpc_regbank.Bank_file.flush_all b
        | None -> ());
        suspend_current st;
        let stack = Eval_stack.contents st.stack in
        Array.iter (fun _ -> Cost.mem_write st.cost) stack;
        Queue.add
          {
            State.p_id = st.current_pid;
            p_lf = st.lf;
            p_stack = stack;
            p_rctx = st.return_ctx;
          }
          st.ready;
        match Queue.take_opt st.ready with
        | Some p -> resume_process st p
        | None -> assert false)
  end

let stop_process (st : State.t) =
  st.metrics.other_xfers <- st.metrics.other_xfers + 1;
  let s = snap st in
  flush_rstack st;
  (match st.banks with
  | Some b -> Fpc_regbank.Bank_file.flush_all b
  | None -> ());
  free_frame st ~lf:st.lf;
  (* The departure is its own event; a resumed successor adds a second
     Switch from [end_process]. *)
  emit_xfer st s Fpc_trace.Event.Switch ~target:(-1);
  end_process st

(* ------------------------------------------------------------------ *)
(* Traps: one more XFER client (§5.1: "several other instructions which
   combine an XFER with other operations, to support traps, coroutine
   linkages, and multiple processes"). *)

let catchable = function
  | State.Div_zero | State.Break | State.Eval_overflow | State.Eval_underflow -> true
  | State.Illegal_instruction _ | State.Nil_context | State.Frame_heap_exhausted
  | State.Step_limit ->
    false

let trap (st : State.t) reason =
  let s = snap st in
  Cost.trap st.cost;
  match Image.trap_handler st.image with
  | Descriptor.Proc { gfi; ev } when catchable reason ->
    guarded st s (Fpc_trace.Event.Trap (State.trap_code reason)) (fun () ->
        flush_rstack st;
        (match st.banks with
        | Some b -> Fpc_regbank.Bank_file.flush_all b
        | None -> ());
        suspend_current st;
        Eval_stack.clear st.stack;
        Eval_stack.push st.stack (State.trap_code reason);
        let ret_word = st.lf in
        resolve_into st ~tag:tag_desc ~a:gfi ~b:ev;
        enter_proc st ~ret_word ~fast:false)
  | Descriptor.Proc _ | Descriptor.Frame _ | Descriptor.Nil ->
    st.status <- State.Trapped reason;
    emit_xfer st s (Fpc_trace.Event.Trap (State.trap_code reason)) ~target:(-1)

(* ------------------------------------------------------------------ *)
(* Boot. *)

let start (st : State.t) ~instance ~proc ~args =
  let s = snap st in
  let pi = Image.find_proc st.image ~instance ~proc in
  let ii = Image.find_instance st.image instance in
  let packed = alloc_frame st ~fsi:pi.pi_fsi in
  let lf = packed lsr 8 and granted_fsi = packed land 0xFF in
  Frame.write_return_link st.mem ~lf 0;
  Frame.write_global_frame st.mem ~lf ii.ii_gf_addr;
  st.lf <- lf;
  st.gf <- ii.ii_gf_addr;
  st.cb <- ii.ii_code_base;
  st.pc_abs <- (2 * ii.ii_code_base) + pi.pi_entry_offset + 1;
  st.return_ctx <- 0;
  (match st.banks with
  | Some banks ->
    let args = Array.of_list args in
    st.metrics.arg_words_renamed <- st.metrics.arg_words_renamed + Array.length args;
    Fpc_regbank.Bank_file.on_call banks ~callee_lf:lf
      ~payload_words:(payload_of_fsi st granted_fsi) ~args
  | None ->
    st.metrics.arg_words_stored <- st.metrics.arg_words_stored + List.length args;
    List.iter (Eval_stack.push st.stack) args);
  st.status <- State.Running;
  emit_xfer st s Fpc_trace.Event.Begin ~target:st.pc_abs
