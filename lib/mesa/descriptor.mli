(** Context words and packed procedure descriptors.

    §4 defines a context as a variant record: either a reference to an
    existing frame, or a procedure descriptor — the abstract "creation
    context" that builds a fresh frame on every XFER to it.  §5 packs a
    descriptor into one 16-bit word: a one-bit tag, a ten-bit env field
    (a GFT index) and a five-bit code field (an entry-vector index).

    Packing scheme: local frames are quad-aligned, so a frame context is
    the frame address itself (low two bits 00); descriptors set bit 0:

    {v
    bit:       15..6    5..1   0
    Proc:      gfi      ev     1
    Frame:     lf (low two bits 00)
    Nil:       0
    v}

    The two spare bits of a GFT entry bias the entry-point index in
    multiples of 32, so one module instance can expose up to 128 entry
    points through up to four GFT entries (§5.1). *)

type t =
  | Nil
  | Frame of int  (** frame pointer LF (quad-aligned, non-zero) *)
  | Proc of { gfi : int; ev : int }
      (** [gfi]: global-frame-table index, 1..1023; [ev]: entry index 0..31
          (biased by the GFT entry) *)

val pack : t -> int
(** The 16-bit context word.  Raises [Invalid_argument] when a field is out
    of range or a frame address is unaligned. *)

val unpack : int -> t
(** Inverse of {!pack}.  Raises [Invalid_argument] on a malformed word
    (a "frame" address with bit 1 set). *)

val is_frame_word : int -> bool
(** True when the packed word denotes an existing frame (not Nil, not a
    descriptor). *)

(** {1 Packed-word accessors}

    Classify and split a context word without materialising the variant —
    the transfer engine's per-call path must not allocate.  [word_kind]
    returns one of the codes below; for a {!word_frame} word the frame
    pointer is the word itself. *)

val word_nil : int  (** 0 *)

val word_proc : int  (** 1 *)

val word_frame : int  (** 2 *)

val word_malformed : int  (** -1 *)

val word_kind : int -> int
val word_gfi : int -> int
val word_ev : int -> int

val equal : t -> t -> bool
val to_string : t -> string

val max_gfi : int  (** 1023 *)

val max_ev : int  (** 31 *)
