(** Minimal JSON parsing — the read half of {!Jsonout}.

    The bench harness merges new measurements into the existing
    [BENCH_results.json] instead of overwriting it, and tests validate the
    Chrome trace files the trace subsystem emits; both need to read JSON
    back, and the toolchain deliberately has no external JSON dependency.
    Accepts the full RFC 8259 grammar (objects, arrays, strings with
    escapes, numbers, booleans, null); numbers with a fraction, exponent,
    or magnitude beyond [int] parse as [Float], everything else as
    [Int]. *)

val parse : string -> (Jsonout.t, string) result
(** The single JSON value in the string (surrounding whitespace allowed).
    Trailing garbage, truncation and malformed input yield [Error] with a
    position-annotated message. *)

val parse_file : string -> (Jsonout.t, string) result
(** [parse] the contents of a file; I/O errors become [Error]. *)
