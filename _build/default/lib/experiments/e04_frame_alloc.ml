(** E4 — Figure 2 and §5.3: the AV frame-heap allocator.

    Claims reproduced: "Only three memory references are required to
    allocate a frame ... and four to free it"; "Frame sizes increase from
    a minimum of about 16 bytes in steps of about 20%"; "This scheme
    wastes only 10% of the space in fragmentation, plus space allocated to
    frames of sizes not currently in demand.  These two effects can be
    balanced: fewer frame sizes means more fragmentation, but more chance
    to use an existing free frame." *)

open Fpc_util
open Fpc_frames

let trace = lazy (Fpc_workload.Synthetic.generate ~seed:42 ~length:60_000 ())

let refs_table () =
  let r = Fpc_workload.Replay.replay_allocator (Lazy.force trace) in
  let t =
    Tablefmt.create ~title:"Storage references per allocator operation"
      ~columns:[ ("operation", Tablefmt.Left); ("refs (measured mean)", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "allocate"; Tablefmt.cell_float r.al_mem_refs_per_alloc ];
  Tablefmt.add_row t [ "free"; Tablefmt.cell_float r.al_mem_refs_per_free ];
  Tablefmt.add_note t
    "allocation means slightly above 3 include the retry after a software \
     refill of an empty list";
  (t, r)

let ladder_table () =
  let t =
    Tablefmt.create
      ~title:"Fragmentation vs ladder growth (the \xC2\xA75.3 balance)"
      ~columns:
        [
          ("growth/step", Tablefmt.Left);
          ("classes to 4KB", Tablefmt.Right);
          ("internal frag", Tablefmt.Right);
          ("free-pool words", Tablefmt.Right);
          ("software refills", Tablefmt.Right);
        ]
  in
  let frag12 = ref 0.0 and classes135 = ref 0 in
  List.iter
    (fun growth ->
      let ladder = Size_class.make ~growth () in
      let r = Fpc_workload.Replay.replay_allocator ~ladder (Lazy.force trace) in
      if growth = 1.2 then frag12 := r.al_fragmentation;
      if growth = 1.35 then classes135 := Size_class.class_count ladder;
      Tablefmt.add_row t
        [
          Printf.sprintf "%.2f" growth;
          Tablefmt.cell_int (Size_class.class_count ladder);
          Tablefmt.cell_pct r.al_fragmentation;
          Tablefmt.cell_int r.al_stats.free_pool_words;
          Tablefmt.cell_int r.al_stats.software_traps;
        ])
    [ 1.1; 1.2; 1.35; 1.5; 2.0 ];
  Tablefmt.add_note t
    "fewer classes (larger growth) = more fragmentation but fewer refills, \
     exactly the paper's trade-off sentence";
  (t, !frag12, !classes135)

(* Figure 2: the allocation vector with its free lists, drawn from a real
   allocator state. *)
let figure () =
  let open Fpc_machine in
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 16) () in
  let ladder = Size_class.default in
  let av = Alloc_vector.create ~mem ~ladder ~av_base:16 ~heap_base:1024
      ~heap_limit:(1 lsl 16) ()
  in
  (* Touch a few classes so the lists are visible. *)
  let live =
    List.map (fun w -> Alloc_vector.alloc_words av ~cost ~body_words:w)
      [ 4; 4; 10; 10; 30; 30; 100 ]
  in
  List.iteri (fun i lf -> if i mod 2 = 0 then Alloc_vector.free av ~cost ~lf) live;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== Figure 2: the frame allocation heap ==\n";
  Buffer.add_string buf "AV index | block words | free list (block addresses)\n";
  for fsi = 0 to Size_class.class_count ladder - 1 do
    let rec walk node acc =
      if node = 0 || List.length acc > 6 then List.rev acc
      else walk (Memory.peek mem (node + 1)) (node :: acc)
    in
    let nodes = walk (Memory.peek mem (16 + fsi)) [] in
    if nodes <> [] then
      Buffer.add_string buf
        (Printf.sprintf "   %3d   |   %5d     | %s\n" fsi
           (Size_class.block_words ladder fsi)
           (String.concat " -> " (List.map string_of_int nodes)))
  done;
  Buffer.add_string buf
    "(each free node keeps its fsi in word 0; the link lives in word 1)\n";
  Buffer.contents buf

let run () =
  let t1, r = refs_table () in
  let t2, frag12, classes135 = ladder_table () in
  {
    Exp.id = "E4";
    key = "frame_alloc";
    title = "Figure 2: the AV fast frame heap";
    paper_claim =
      "3 refs to allocate, 4 to free; ~20% size steps; ~10% fragmentation; \
       fewer sizes = more fragmentation but better reuse (\xC2\xA75.3)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2; figure () ];
    headlines =
      [
        ("refs_per_alloc", r.al_mem_refs_per_alloc);
        ("refs_per_free", r.al_mem_refs_per_free);
        ("fragmentation_at_1.2", frag12);
        ("classes_at_1.35", float_of_int classes135);
      ];
  }
