(** Static space accounting over a linked image.

    §5's design criterion is economy of space; §6's D1 prices DIRECTCALL
    against it.  This module measures the real bytes an image spends on
    code, tables and descriptors, and counts call-site encodings by form,
    so experiments E2/E5/E13 report measured rather than hand-computed
    numbers. *)

type call_sites = {
  efc_one_byte : int;  (** one-byte EXTERNALCALLs (LV index <= 15) *)
  efc_two_byte : int;
  lfc : int;
  dfc : int;  (** four-byte DIRECTCALLs *)
  sdfc : int;  (** three-byte SHORTDIRECTCALLs *)
  xf : int;  (** raw XFERs (computed / coroutine transfers) *)
}

val call_site_bytes : call_sites -> int

type report = {
  code_bytes : int;  (** all code segments, EV and headers included *)
  ev_bytes : int;
  header_bytes : int;  (** two-byte DIRECTCALL landing pads *)
  fsi_bytes : int;
  body_bytes : int;
  lv_words : int;
  gft_entries_used : int;
  global_frame_overhead_words : int;  (** code-base and LV-base words *)
  call_sites : call_sites;
}

val measure : Image.t -> report

val render : title:string -> report -> string
(** A table for the experiment output. *)
