lib/compiler/compile.ml: Codegen Convention Fpc_core Fpc_interp Fpc_lang Fpc_mesa List Lower Printf Result
