(** XFER — the single primitive for transferring control (§3), and the
    operations built from it: procedure call and return, coroutine
    transfer, process fork/switch, and traps.

    The essential model properties are preserved across every engine:

    - F1: everything needed to resume execution is in the context — a
      frame pointer suffices as a return link, and a procedure descriptor
      carries its environment.
    - F2: contexts are first-class, allocated and freed explicitly, and
      not necessarily LIFO.
    - F3: any context may be the argument of any XFER; the destination —
      not the caller — decides whether the transfer is a call, a coroutine
      resume, or something else.
    - F4: arguments and results ride the (register-resident) evaluation
      stack symmetrically.

    Engine-dependent behaviour: under a return stack (I3), call
    instructions defer the caller-PC / returnLink / globalFrame stores into
    the stack entry, and any non-LIFO event flushes those deferred stores
    to storage exactly as §6 prescribes.  Under register banks (I4) the
    argument record is delivered by renaming the stack bank (§7.2), and a
    processor free-frame stack serves common-size frames without touching
    the AV (§7.1). *)

exception Machine_trap of State.trap_reason
(** Raised by transfer machinery on unrecoverable conditions; the
    interpreter routes it through {!trap}. *)

val start : State.t -> instance:string -> proc:string -> args:int list -> unit
(** Boot: create the root context for [instance.proc] (returnLink NIL) and
    aim the machine at its first instruction. *)

val call_external : State.t -> lv_index:int -> unit
(** EXTERNALCALL: through the caller's link vector (entry [gf - 1 - lv],
    the word just below the global frame).  If the LV entry has been
    rebound to an existing frame context, the transfer becomes a coroutine
    resume — F3 in action. *)

val call_local : State.t -> ev_index:int -> unit
(** LOCALCALL: same environment and code base, one level of indirection. *)

val call_direct : State.t -> target_abs:int -> unit
(** DIRECTCALL / SHORTDIRECTCALL (the interpreter resolves the relative
    form): the two-byte global-frame header and fsi byte at the target are
    consumed as pseudo-instructions; with a return stack they ride the IFU
    prefetch and cost nothing. *)

val xfer : State.t -> dest_word:int -> unit
(** The raw XFER (XF instruction): transfer to a popped context word.
    Frame destinations are coroutine resumes (the current frame stays
    alive); descriptor destinations create a fresh activation;
    returnContext is set to the current frame either way. *)

val return_ : State.t -> unit
(** RETURN: free the current frame, set returnContext to NIL, XFER to the
    returnLink.  A NIL returnLink ends the current process (the root
    context has returned). *)

val fork : State.t -> nargs:int -> unit
(** Create a new process from a popped descriptor and [nargs] argument
    words; it joins the ready queue. *)

val yield : State.t -> unit
(** Round-robin process switch; flushes banks and the return stack
    ("as usual, when life gets complicated ... fall back to the general
    scheme", §7.1). *)

val stop_process : State.t -> unit
(** Terminate the current process and schedule the next, halting when none
    remain. *)

val trap : State.t -> State.trap_reason -> unit
(** Deliver a trap: recoverable reasons XFER to the installed handler
    (returnContext = the faulting frame, argument = the trap code); without
    a handler, or for fatal reasons, the machine stops. *)

(** {1 Building blocks}

    The pieces a call or return is made of, exported for the compiled
    tier: its specialised transfer nodes re-sequence exactly these (with
    destination resolution folded to translate-time constants), so every
    metered reference, counter and sub-event stays bit-identical to the
    interpreter's transfer path.  Nothing here is useful to ordinary
    clients. *)

val alloc_frame : State.t -> fsi:int -> int
(** Allocate an activation frame of size class [fsi], preferring the
    processor free-frame stack.  Returns [(lf lsl 8) lor granted_fsi];
    raises {!Machine_trap}[ Frame_heap_exhausted] like a call would. *)

val free_frame : State.t -> lf:int -> unit
(** Return a frame to the free-frame stack or the AV free list. *)

val suspend_current : State.t -> unit
(** Store the PC (and, in deferred mode, the globalFrame word) into the
    current frame, as leaving by a slow transfer requires. *)

val resume_frame : State.t -> dest_lf:int -> unit
(** Restore the register file from frame [dest_lf] and aim the PC at its
    saved resume point. *)

val classify : State.t -> int -> unit
(** Count the just-finished transfer as fast or slow by comparing the
    storage-reference meter against the given baseline. *)

val payload_of_fsi : State.t -> int -> int
(** Locals payload (block words minus overhead) of size class [fsi]. *)
