(** Trace events: one typed record per architectural happening.

    The paper's whole method is cost attribution per control transfer —
    §4's table charges every call, return, coroutine transfer and process
    switch with the storage references it performs — and these records make
    the same attribution available for {e arbitrary} programs instead of
    the fixed experiment tables.  The machine core emits one event per
    transfer (carrying the cycle and storage-reference deltas the operation
    itself was charged), and the fast-path machinery — frame allocator, IFU
    return stack, register banks — emits fine-grained sub-events so a
    profile can explain {e why} a transfer was slow.

    Events are plain data: no pointers into the machine.  The fields are
    mutable because the sink's ring reuses its slot records in place
    (the hot emit path allocates nothing); anything handed out by
    {!Sink.events} is a private {!copy} and safe to retain, but a record
    passed to a sink {e listener} is the live slot — read it
    synchronously, and {!copy} it if it must outlive the callback. *)

type kind =
  | Begin  (** boot: the initial entry into [Main.main] *)
  | Call  (** EFC/LFC/DFC/SDFC completing as a procedure call *)
  | Return
  | Coroutine  (** XFER to an existing context (F2/F3) *)
  | Switch  (** process switch: YIELD, STOPPROC, end-of-process resume *)
  | Fork  (** process creation — queues a context, no control transfer *)
  | Trap of int  (** trap taken, carrying {!Fpc_core.State.trap_code} *)
  | Frame_alloc of { words : int; via_ff : bool; software : bool }
      (** a frame (or §5.3 heap record) of [words] block words;
          [via_ff] = served by the processor free-frame stack (§7.1),
          [software] = took the software-allocator trap *)
  | Frame_free of { words : int; to_ff : bool }
  | Rs_push  (** return info captured by the IFU return stack (§6) *)
  | Rs_hit  (** a return served from the stack — the fast path *)
  | Rs_flush of int  (** non-LIFO event forced [n] deferred stores out *)
  | Rs_spill  (** overflow spilled the oldest entry *)
  | Bank_load of int  (** bank underflow loaded [n] words from storage (§7.1) *)
  | Bank_spill of int  (** bank eviction/flush wrote [n] dirty words back *)

type t = {
  mutable seq : int;  (** assigned by the sink; monotonically increasing *)
  mutable kind : kind;
  mutable pc : int;  (** absolute byte PC of the instruction responsible *)
  mutable target : int;
      (** PC after a transfer completes; -1 for non-transfers *)
  mutable depth : int;  (** dynamic call depth after the event *)
  mutable fast : bool;  (** transfer completed with zero storage references *)
  mutable cycles : int;  (** cumulative cycle meter {e after} the event *)
  mutable mem_refs : int;  (** cumulative storage references after the event *)
  mutable d_cycles : int;  (** cycles charged by this operation itself *)
  mutable d_mem_refs : int;
}

val copy : t -> t
(** A fresh record with the same fields — detach an event from a reused
    ring slot before retaining it. *)

val is_transfer : kind -> bool
(** Begin, Call, Return, Coroutine or Switch — the events that move
    control between contexts. *)

val kind_name : kind -> string
(** Short stable name, e.g. ["call"], ["rs-flush"]. *)

val to_string : t -> string
(** One-line rendering for debug listings. *)

val zero : t
(** An inert placeholder (used to initialise ring storage). *)
