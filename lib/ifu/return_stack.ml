type entry = {
  mutable r_lf : int;
  mutable r_gf : int;
  mutable r_cb : int;
  mutable r_pc_abs : int;
  mutable r_bank : int;
}

let no_cb = -1
let no_bank = -1

(* Slots are preallocated records rewritten in place: a push/pop pair on
   the hot transfer path touches the OCaml allocator not at all.  A slot
   returned by [popped]/[drop_oldest_slot] stays valid until the next
   push reuses it. *)
type t = {
  entries : entry array;
  mutable top : int;
  mutable pushes : int;
  mutable fast_pops : int;
  mutable empty_pops : int;
  mutable flushes : int;
  mutable flushed_entries : int;
  mutable spills : int;
  mutable on_event : (Fpc_trace.Event.kind -> unit) option;
}

let create ~depth =
  if depth <= 0 then invalid_arg "Return_stack.create: depth must be positive";
  {
    entries =
      Array.init depth (fun _ ->
          { r_lf = 0; r_gf = 0; r_cb = no_cb; r_pc_abs = 0; r_bank = no_bank });
    top = 0;
    pushes = 0;
    fast_pops = 0;
    empty_pops = 0;
    flushes = 0;
    flushed_entries = 0;
    spills = 0;
    on_event = None;
  }

let set_on_event t f = t.on_event <- f
let fire t k = match t.on_event with Some f -> f k | None -> ()

let depth t = Array.length t.entries
let length t = t.top
let is_empty t = t.top = 0
let is_full t = t.top = Array.length t.entries

let reset t =
  t.top <- 0;
  t.pushes <- 0;
  t.fast_pops <- 0;
  t.empty_pops <- 0;
  t.flushes <- 0;
  t.flushed_entries <- 0;
  t.spills <- 0

let push t ~lf ~gf ~cb ~pc_abs ~bank =
  if is_full t then invalid_arg "Return_stack.push: full (flush first)";
  let e = t.entries.(t.top) in
  e.r_lf <- lf;
  e.r_gf <- gf;
  e.r_cb <- cb;
  e.r_pc_abs <- pc_abs;
  e.r_bank <- bank;
  t.top <- t.top + 1;
  t.pushes <- t.pushes + 1;
  fire t Fpc_trace.Event.Rs_push

let push_entry t e = push t ~lf:e.r_lf ~gf:e.r_gf ~cb:e.r_cb ~pc_abs:e.r_pc_abs ~bank:e.r_bank

let try_pop t =
  if t.top = 0 then begin
    t.empty_pops <- t.empty_pops + 1;
    false
  end
  else begin
    t.top <- t.top - 1;
    t.fast_pops <- t.fast_pops + 1;
    fire t Fpc_trace.Event.Rs_hit;
    true
  end

let popped t = t.entries.(t.top)
let pop t = if try_pop t then Some (popped t) else None
let peek t = if t.top = 0 then None else Some t.entries.(t.top - 1)

let copy_entry e =
  { r_lf = e.r_lf; r_gf = e.r_gf; r_cb = e.r_cb; r_pc_abs = e.r_pc_abs; r_bank = e.r_bank }

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (copy_entry t.entries.(i) :: acc) in
  go (t.top - 1) []

let second_oldest_slot t =
  if t.top < 2 then invalid_arg "Return_stack.second_oldest_slot: fewer than 2 entries";
  t.entries.(1)

let second_oldest t = if t.top < 2 then None else Some t.entries.(1)

(* Rotate the bottom record to just above the new top: it stays valid for
   the caller's deferred stores until the next push rewrites it. *)
let drop_oldest_slot t =
  let e = t.entries.(0) in
  for i = 0 to t.top - 2 do
    t.entries.(i) <- t.entries.(i + 1)
  done;
  t.top <- t.top - 1;
  t.entries.(t.top) <- e;
  t.spills <- t.spills + 1;
  fire t Fpc_trace.Event.Rs_spill;
  e

let drop_oldest t = if t.top = 0 then None else Some (drop_oldest_slot t)

let flush t ~f =
  if t.top > 0 then begin
    t.flushes <- t.flushes + 1;
    let n = t.top in
    for i = t.top - 1 downto 0 do
      f t.entries.(i);
      t.flushed_entries <- t.flushed_entries + 1
    done;
    t.top <- 0;
    match t.on_event with
    | Some f -> f (Fpc_trace.Event.Rs_flush n)
    | None -> ()
  end

let pushes t = t.pushes
let fast_pops t = t.fast_pops
let empty_pops t = t.empty_pops
let flushes t = t.flushes
let flushed_entries t = t.flushed_entries
let spills t = t.spills
