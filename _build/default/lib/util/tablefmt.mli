(** Aligned plain-text tables for experiment output.

    Every experiment in the reproduction renders its result as one of these
    tables, so EXPERIMENTS.md, [bench/main.exe] and [bin/fpc.exe] share one
    formatting path. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A table with the given title and column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Raises [Invalid_argument] on column-count mismatch. *)

val add_note : t -> string -> unit
(** Append a free-form note printed under the table. *)

val render : t -> string
(** The table as a string, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

(** Cell formatting helpers, so experiments format numbers uniformly. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : ?decimals:int -> float -> string
(** [cell_pct f] renders the fraction [f] as a percentage, e.g. 0.95 -> "95.0%". *)

val cell_ratio : ?decimals:int -> float -> string
(** e.g. 3.2 -> "3.2x". *)
