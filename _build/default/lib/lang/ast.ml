(** Abstract syntax of mini-Mesa, the Algol-family source language of the
    reproduction (§1 limits the paper's claims to Algol-like languages:
    Pascal, Mesa, Ada).

    The subset covers what the paper's machinery needs to be exercised:
    modules with global variables and imports; procedures with value and
    VAR (by-reference — the §7.4 pointers-to-locals case) parameters;
    integers, booleans and first-class CONTEXT values; coroutine TRANSFER
    and RETCTX (the returnContext register, §3); FORK/YIELD/STOP for
    multiple processes; and OUTPUT for observable behaviour. *)

type typ = Tint | Tbool | Tcontext | Tarray of int

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Blt
  | Ble
  | Beq
  | Bne
  | Bge
  | Bgt
  | Band
  | Bor

type unop = Uneg | Unot

(** A procedure reference: [f] (same module) or [M.f]. *)
type callee = { c_module : string option; c_proc : string }

type expr =
  | Int of int
  | Bool of bool
  | Nil  (** the NIL context *)
  | Var of string
  | Index of string * expr  (** [a\[i\]] — element of a local or global array *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of callee * expr list
  | Transfer of expr * expr list
      (** [TRANSFER(ctx, v1..vn)]: XFER to [ctx] passing the values; the
          expression's value is the single word the partner sends back *)
  | ProcVal of callee  (** [@f] — the procedure descriptor as a CONTEXT value *)
  | Retctx  (** [RETCTX] — who transferred here last (§3's returnContext) *)

type stmt =
  | Local of string * typ * expr option
  | Assign of string * expr
  | AssignIdx of string * expr * expr  (** [a\[i\] := e] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Output of expr
  | CallS of callee * expr list
  | TransferS of expr * expr list  (** TRANSFER whose returned value is dropped *)
  | ForkS of callee * expr list
  | YieldS
  | StopS

type param = { prm_name : string; prm_type : typ; prm_var : bool }

type proc = {
  pr_name : string;
  pr_params : param list;
  pr_result : typ option;
  pr_body : stmt list;
}

type global = { g_name : string; g_type : typ; g_init : int option }

type module_decl = {
  md_name : string;
  md_imports : string list;
  md_globals : global list;
  md_procs : proc list;
}

type program = module_decl list

let typ_to_string = function
  | Tint -> "INT"
  | Tbool -> "BOOL"
  | Tcontext -> "CONTEXT"
  | Tarray n -> Printf.sprintf "ARRAY %d OF INT" n

let typ_words = function Tint | Tbool | Tcontext -> 1 | Tarray n -> n

let callee_to_string c =
  match c.c_module with None -> c.c_proc | Some m -> m ^ "." ^ c.c_proc
