The fpc binary end to end.  Run a suite program:

  $ fpc run fib 2>/dev/null
  377

Pick an engine:

  $ fpc run mixed -e i4 2>/dev/null
  504
  111
  2

List the built-in suite:

  $ fpc suite | head -4
  fib
  ackermann
  sieve
  isort

Disassemble a tiny program:

  $ cat > tiny.fpc <<'SRC'
  > MODULE Main;
  > PROC main() =
  >   OUTPUT 6 * 7;
  > END;
  > END;
  > SRC
  $ fpc disasm tiny.fpc
  MODULE Main (globals 1 words, 0 imports)
  PROC main (args 0, frame payload 1 words, 5 bytes)
      0: LI 6
      1: LI 7
      2: MUL
      3: OUT
      4: RET
  $ fpc run tiny.fpc 2>/dev/null
  42

Unknown programs fail cleanly:

  $ fpc run no_such_program 2>&1 | head -1
  fpc: no_such_program: not a file and not a suite program (suite: fib, ackermann, sieve, isort, callchain, leafcalls, coroutine, processes, mixed, deep, hanoi, bsearch, matmul, knapsack)

An experiment renders:

  $ fpc experiment E10 2>/dev/null | head -2
  ### E10 [call_density] One call or return per ~10 instructions
  paper: one call or return for every 10 instructions executed (§1)
