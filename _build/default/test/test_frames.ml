(* Tests for the frame allocator: the size ladder and the AV fast heap. *)

open Fpc_machine
open Fpc_frames

let qtest = QCheck_alcotest.to_alcotest

(* ---- Size_class ---- *)

let test_ladder_shape () =
  let l = Size_class.default in
  let sizes = Size_class.sizes l in
  Alcotest.(check int) "min is 8 words (16 bytes)" 8 sizes.(0);
  Alcotest.(check bool) "reaches 4KB" true (Size_class.max_block_words l >= 2048);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) (Printf.sprintf "class %d quad-aligned" i) 0 (s land 3);
      if i > 0 then
        Alcotest.(check bool) "strictly increasing" true (s > sizes.(i - 1)))
    sizes

let test_ladder_20_percent_steps () =
  let l = Size_class.make ~growth:1.2 () in
  let sizes = Size_class.sizes l in
  (* Steps track ~20% growth once past the quad-rounding regime. *)
  Array.iteri
    (fun i s ->
      if i > 0 && sizes.(i - 1) >= 40 && i < Array.length sizes - 1 then begin
        let step = float_of_int s /. float_of_int sizes.(i - 1) in
        Alcotest.(check bool)
          (Printf.sprintf "step %d in [1.05, 1.35] (%.3f)" i step)
          true
          (step >= 1.05 && step <= 1.35)
      end)
    sizes

let test_fewer_than_20_classes_at_135 () =
  (* The paper's "less than 20 steps ... up to several thousand bytes". *)
  let l = Size_class.make ~growth:1.35 () in
  Alcotest.(check bool) "<= 20 classes" true (Size_class.class_count l <= 20);
  Alcotest.(check bool) "covers 4KB" true (Size_class.max_block_words l >= 2048)

let test_index_for_block () =
  let l = Size_class.default in
  Alcotest.(check (option int)) "smallest serves 8" (Some 0) (Size_class.index_for_block l 8);
  Alcotest.(check (option int)) "1 word fits class 0" (Some 0) (Size_class.index_for_block l 1);
  Alcotest.(check (option int)) "too big" None
    (Size_class.index_for_block l (Size_class.max_block_words l + 1));
  match Size_class.index_for_block l 100 with
  | None -> Alcotest.fail "100 words should fit"
  | Some fsi ->
    Alcotest.(check bool) "granted >= request" true (Size_class.block_words l fsi >= 100);
    if fsi > 0 then
      Alcotest.(check bool) "smallest adequate class" true
        (Size_class.block_words l (fsi - 1) < 100)

let prop_index_smallest_adequate =
  QCheck.Test.make ~name:"ladder: index_for_block returns smallest adequate"
    QCheck.(int_range 1 2048)
    (fun request ->
      let l = Size_class.default in
      match Size_class.index_for_block l request with
      | None -> request > Size_class.max_block_words l
      | Some fsi ->
        Size_class.block_words l fsi >= request
        && (fsi = 0 || Size_class.block_words l (fsi - 1) < request))

let test_frame_layout () =
  Alcotest.(check int) "overhead" 4 Frame.overhead_words;
  Alcotest.(check int) "lf of block" 104 (Frame.lf_of_block 100);
  Alcotest.(check int) "block of lf" 100 (Frame.block_of_lf 104);
  Alcotest.(check int) "request for 10 locals" 14 (Frame.block_words_for_locals 10)

(* ---- Alloc_vector ---- *)

let make_av ?mode () =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:(1 lsl 16) () in
  let av =
    Alloc_vector.create ?mode ~mem ~ladder:Size_class.default ~av_base:16
      ~heap_base:1024 ~heap_limit:(1 lsl 16) ()
  in
  (av, cost, mem)

let test_alloc_is_3_refs_free_is_4 () =
  let av, cost, _ = make_av () in
  (* Warm the class so the free list is non-empty. *)
  let warm = Alloc_vector.alloc_words av ~cost ~body_words:8 in
  Alloc_vector.free av ~cost ~lf:warm;
  let before = Cost.mem_refs cost in
  let lf = Alloc_vector.alloc_words av ~cost ~body_words:8 in
  Alcotest.(check int) "allocate = 3 refs" 3 (Cost.mem_refs cost - before);
  let before = Cost.mem_refs cost in
  Alloc_vector.free av ~cost ~lf;
  Alcotest.(check int) "free = 4 refs" 4 (Cost.mem_refs cost - before)

let test_alloc_alignment_and_fsi () =
  let av, cost, mem = make_av () in
  let lf = Alloc_vector.alloc_words av ~cost ~body_words:10 in
  Alcotest.(check int) "quad aligned" 0 (lf land 3);
  let fsi = Frame.peek_fsi mem ~lf in
  Alcotest.(check bool) "fsi stored in block" true
    (Size_class.block_words Size_class.default fsi >= 14)

let test_double_free_rejected () =
  let av, cost, _ = make_av () in
  let lf = Alloc_vector.alloc_words av ~cost ~body_words:8 in
  Alloc_vector.free av ~cost ~lf;
  Alcotest.(check bool) "double free raises" true
    (match Alloc_vector.free av ~cost ~lf with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_reuse_freed_frame () =
  let av, cost, _ = make_av () in
  let lf1 = Alloc_vector.alloc_words av ~cost ~body_words:8 in
  Alloc_vector.free av ~cost ~lf:lf1;
  let lf2 = Alloc_vector.alloc_words av ~cost ~body_words:8 in
  Alcotest.(check int) "same block reused (LIFO free list)" lf1 lf2

let test_software_only_mode () =
  let av, cost, _ = make_av ~mode:Alloc_vector.Software_only () in
  let before_cycles = Cost.cycles cost in
  let lf = Alloc_vector.alloc_words av ~cost ~body_words:8 in
  let p = Cost.params cost in
  Alcotest.(check bool) "charged software cost" true
    (Cost.cycles cost - before_cycles >= p.software_alloc_cycles);
  Alcotest.(check int) "no fast-path refs" 0 (Cost.mem_refs cost);
  Alloc_vector.free av ~cost ~lf;
  let s = Alloc_vector.stats av in
  Alcotest.(check int) "no fast allocs" 0 s.fast_allocs;
  Alcotest.(check bool) "software traps counted" true (s.software_traps >= 2)

let test_fragmentation_accounting () =
  let av, cost, _ = make_av () in
  (* Request 9 payload words = 13-word block; the granted class is 16. *)
  let _lf = Alloc_vector.alloc_words av ~cost ~body_words:9 in
  let s = Alloc_vector.stats av in
  Alcotest.(check int) "requested" 13 s.requested_words;
  Alcotest.(check int) "granted" 16 s.live_words;
  Alcotest.(check (float 0.001)) "fragmentation" (3.0 /. 16.0)
    (Alloc_vector.internal_fragmentation av)

let test_heap_exhaustion () =
  let cost = Cost.create () in
  let mem = Memory.create ~cost ~size_words:2048 () in
  let av =
    Alloc_vector.create ~mem ~ladder:Size_class.default ~av_base:16 ~heap_base:1024
      ~heap_limit:1152 ()
  in
  Alcotest.(check bool) "raises eventually" true
    (match
       for _ = 1 to 100 do
         ignore (Alloc_vector.alloc_words av ~cost ~body_words:8)
       done
     with
    | exception Alloc_vector.Out_of_frame_heap -> true
    | () -> false)

(* Random alloc/free interleavings keep the free lists well-formed and
   never hand out overlapping blocks — the central safety property. *)
let prop_alloc_free_invariants =
  QCheck.Test.make ~count:60 ~name:"allocator: invariants under random traffic"
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 120) (int_range 0 99)))
    (fun (seed, ops) ->
      ignore seed;
      let av, cost, mem = make_av () in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if op < 60 || !live = [] then begin
            let payload = 1 + (op mod 50) in
            let lf = Alloc_vector.alloc_words av ~cost ~body_words:payload in
            (* No overlap with any live block. *)
            let fsi = Frame.peek_fsi mem ~lf in
            let words = Size_class.block_words Size_class.default fsi in
            let b1 = Frame.block_of_lf lf in
            List.iter
              (fun (lf', w') ->
                let b2 = Frame.block_of_lf lf' in
                if b1 < b2 + w' && b2 < b1 + words then ok := false)
              !live;
            live := (lf, words) :: !live
          end
          else begin
            match !live with
            | (lf, _) :: rest ->
              Alloc_vector.free av ~cost ~lf;
              live := rest
            | [] -> ()
          end)
        ops;
      (match Alloc_vector.check_invariants av with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report msg);
      !ok)

let () =
  Alcotest.run "frames"
    [
      ( "size_class",
        [
          Alcotest.test_case "ladder shape" `Quick test_ladder_shape;
          Alcotest.test_case "~20% steps" `Quick test_ladder_20_percent_steps;
          Alcotest.test_case "<20 classes at 1.35" `Quick test_fewer_than_20_classes_at_135;
          Alcotest.test_case "index_for_block" `Quick test_index_for_block;
          qtest prop_index_smallest_adequate;
          Alcotest.test_case "frame layout" `Quick test_frame_layout;
        ] );
      ( "alloc_vector",
        [
          Alcotest.test_case "3 refs alloc, 4 free" `Quick test_alloc_is_3_refs_free_is_4;
          Alcotest.test_case "alignment and fsi" `Quick test_alloc_alignment_and_fsi;
          Alcotest.test_case "double free" `Quick test_double_free_rejected;
          Alcotest.test_case "freed frame reused" `Quick test_reuse_freed_frame;
          Alcotest.test_case "software-only mode (I1)" `Quick test_software_only_mode;
          Alcotest.test_case "fragmentation accounting" `Quick test_fragmentation_accounting;
          Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion;
          qtest prop_alloc_free_invariants;
        ] );
    ]
