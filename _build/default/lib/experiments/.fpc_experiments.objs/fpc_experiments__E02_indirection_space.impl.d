lib/experiments/e02_indirection_space.ml: Exp Fpc_core Fpc_mesa Fpc_util Harness List Tablefmt
