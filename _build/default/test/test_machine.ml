(* Tests for the machine substrate: cost model, memory, cache. *)

open Fpc_machine

let qtest = QCheck_alcotest.to_alcotest

(* ---- Cost ---- *)

let test_cost_charges () =
  let c = Cost.create () in
  Cost.mem_read c;
  Cost.mem_read c;
  Cost.mem_write c;
  Cost.dispatch c;
  Cost.jump c;
  Alcotest.(check int) "reads" 2 (Cost.mem_reads c);
  Alcotest.(check int) "writes" 1 (Cost.mem_writes c);
  Alcotest.(check int) "refs" 3 (Cost.mem_refs c);
  let p = Cost.params c in
  Alcotest.(check int) "cycles"
    ((3 * p.mem_ref_cycles) + p.dispatch_cycles + p.jump_cycles)
    (Cost.cycles c)

let test_cost_snapshot_delta () =
  let c = Cost.create () in
  Cost.mem_read c;
  let before = Cost.snapshot c in
  Cost.mem_write c;
  Cost.bank_ref c;
  let d = Cost.delta ~before ~after:(Cost.snapshot c) in
  Alcotest.(check int) "delta writes" 1 d.s_mem_writes;
  Alcotest.(check int) "delta reads" 0 d.s_mem_reads;
  Alcotest.(check int) "delta banks" 1 d.s_bank_refs

let test_cost_reset () =
  let c = Cost.create () in
  Cost.mem_read c;
  Cost.reset c;
  Alcotest.(check int) "cycles zero" 0 (Cost.cycles c);
  Alcotest.(check int) "refs zero" 0 (Cost.mem_refs c)

(* ---- Memory ---- *)

let test_memory_rw () =
  let c = Cost.create () in
  let m = Memory.create ~cost:c ~size_words:256 () in
  Memory.write m 10 0x1234;
  Alcotest.(check int) "read back" 0x1234 (Memory.read m 10);
  Alcotest.(check int) "metered" 2 (Cost.mem_refs c);
  Memory.poke m 11 0xFFFF;
  Alcotest.(check int) "peek unmetered" 0xFFFF (Memory.peek m 11);
  Alcotest.(check int) "still 2 refs" 2 (Cost.mem_refs c)

let test_memory_truncates () =
  let m = Memory.create ~size_words:16 () in
  Memory.poke m 0 0x1FFFF;
  Alcotest.(check int) "16-bit truncation" 0xFFFF (Memory.peek m 0)

let test_memory_bounds () =
  let m = Memory.create ~size_words:16 () in
  Alcotest.check_raises "oob" (Invalid_argument "Memory.peek: address 16 out of range")
    (fun () -> ignore (Memory.peek m 16))

let test_code_bytes () =
  let m = Memory.create ~size_words:64 () in
  let code = Bytes.of_string "\x01\x02\x03\x04\x05" in
  Memory.blit_bytes m ~code_base:8 code;
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "byte %d" i)
      (i + 1)
      (Memory.peek_code_byte m ~code_base:8 ~pc:i)
  done;
  (* Bytes pack two per word, high byte first. *)
  Alcotest.(check int) "word 8" 0x0102 (Memory.peek m 8);
  Alcotest.(check int) "word 9" 0x0304 (Memory.peek m 9);
  Alcotest.(check int) "word 10 high" 0x0500 (Memory.peek m 10)

let test_poke_code_byte () =
  let m = Memory.create ~size_words:64 () in
  Memory.poke m 4 0xAABB;
  Memory.poke_code_byte m ~code_base:4 ~pc:0 0x11;
  Alcotest.(check int) "high replaced" 0x11BB (Memory.peek m 4);
  Memory.poke_code_byte m ~code_base:4 ~pc:1 0x22;
  Alcotest.(check int) "low replaced" 0x1122 (Memory.peek m 4)

let prop_code_byte_roundtrip =
  QCheck.Test.make ~name:"memory: code byte roundtrip"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 255))
    (fun bytes ->
      let m = Memory.create ~size_words:64 () in
      List.iteri (fun i b -> Memory.poke_code_byte m ~code_base:0 ~pc:i b) bytes;
      List.for_all2
        (fun i b -> Memory.peek_code_byte m ~code_base:0 ~pc:i = b)
        (List.mapi (fun i _ -> i) bytes)
        bytes)

let test_words_for_bytes () =
  Alcotest.(check int) "0" 0 (Memory.words_for_bytes 0);
  Alcotest.(check int) "1" 1 (Memory.words_for_bytes 1);
  Alcotest.(check int) "2" 1 (Memory.words_for_bytes 2);
  Alcotest.(check int) "3" 2 (Memory.words_for_bytes 3)

(* ---- Cache ---- *)

let test_cache_hit_after_miss () =
  let c = Cache.create () in
  Alcotest.(check bool) "first is miss" true (Cache.access c ~address:100 ~write:false = `Miss);
  Alcotest.(check bool) "second is hit" true (Cache.access c ~address:100 ~write:false = `Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c ~address:101 ~write:false = `Hit)

let test_cache_lru_eviction () =
  (* 1 set x 2 ways x 1-word lines: third distinct block evicts the LRU. *)
  let c = Cache.create ~config:{ Cache.line_words = 1; sets = 1; ways = 2 } () in
  ignore (Cache.access c ~address:0 ~write:false);
  ignore (Cache.access c ~address:1 ~write:false);
  ignore (Cache.access c ~address:0 ~write:false);
  (* 0 is MRU; inserting 2 evicts 1. *)
  ignore (Cache.access c ~address:2 ~write:false);
  Alcotest.(check bool) "0 still resident" true (Cache.access c ~address:0 ~write:false = `Hit);
  Alcotest.(check bool) "1 evicted" true (Cache.access c ~address:1 ~write:false = `Miss)

let test_cache_rates_and_cycles () =
  let c = Cache.create () in
  for _ = 1 to 4 do
    for a = 0 to 63 do
      ignore (Cache.access c ~address:a ~write:false)
    done
  done;
  Alcotest.(check bool) "looping working set mostly hits" true (Cache.hit_rate c > 0.9);
  let p = Cost.default_params in
  Alcotest.(check bool) "cycles positive" true (Cache.cycles c ~params:p > 0);
  Cache.reset c;
  Alcotest.(check int) "reset" 0 (Cache.accesses c)

let test_cache_rejects_bad_config () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Cache.create: line_words and sets must be powers of two")
    (fun () -> ignore (Cache.create ~config:{ Cache.line_words = 3; sets = 4; ways = 1 } ()))

let () =
  Alcotest.run "machine"
    [
      ( "cost",
        [
          Alcotest.test_case "charges" `Quick test_cost_charges;
          Alcotest.test_case "snapshot delta" `Quick test_cost_snapshot_delta;
          Alcotest.test_case "reset" `Quick test_cost_reset;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write metered" `Quick test_memory_rw;
          Alcotest.test_case "16-bit truncation" `Quick test_memory_truncates;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "code bytes" `Quick test_code_bytes;
          Alcotest.test_case "poke code byte" `Quick test_poke_code_byte;
          Alcotest.test_case "words_for_bytes" `Quick test_words_for_bytes;
          qtest prop_code_byte_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "rates and cycles" `Quick test_cache_rates_and_cycles;
          Alcotest.test_case "rejects bad config" `Quick test_cache_rejects_bad_config;
        ] );
    ]
