lib/experiments/e12_ptr_locals.ml: Cost Exp Fpc_compiler Fpc_core Fpc_interp Fpc_machine Fpc_regbank Fpc_util Harness List String Tablefmt
