lib/interp/interp.mli: Fpc_core Fpc_isa Fpc_mesa
