(** E11 — §1/§3/§6: non-LIFO transfers, and what they cost each design.

    The model handles coroutines, retained frames and multiple processes
    uniformly; a strictly LIFO architecture "needs a contiguous piece of
    storage large enough to hold the largest set of frames it will ever
    have; this makes efficient storage allocation difficult" (§1).  Under
    the return stack, any non-LIFO XFER forces a flush (§6) — so the fast
    path degrades gracefully as coroutine traffic rises.

    Tables: return-stack fast fraction vs coroutine rate; heap residency
    vs the contiguous reservation a LIFO design needs. *)

open Fpc_util

let flush_table () =
  let t =
    Tablefmt.create
      ~title:"Return-stack fast path vs coroutine-transfer rate (depth 8)"
      ~columns:
        [
          ("coroutine rate", Tablefmt.Right);
          ("fast returns", Tablefmt.Right);
          ("slow returns", Tablefmt.Right);
          ("fast fraction", Tablefmt.Right);
          ("flushes", Tablefmt.Right);
        ]
  in
  let fractions = ref [] in
  List.iter
    (fun rate ->
      let profile =
        { Fpc_workload.Synthetic.default_profile with coroutine_rate = rate }
      in
      let trace =
        Fpc_workload.Synthetic.generate ~seed:5 ~profile ~length:100_000 ()
      in
      let r = Fpc_workload.Replay.replay_return_stack ~depth:8 trace in
      fractions := (rate, r.rs_fast_fraction) :: !fractions;
      Tablefmt.add_row t
        [
          Printf.sprintf "%.2f" rate;
          Tablefmt.cell_int r.rs_fast_returns;
          Tablefmt.cell_int r.rs_slow_returns;
          Tablefmt.cell_pct r.rs_fast_fraction;
          Tablefmt.cell_int r.rs_flushes;
        ])
    [ 0.0; 0.01; 0.05; 0.2 ];
  Tablefmt.add_note t
    "the general mechanism is the fallback: correctness is unaffected, \
     only the fast-path share degrades";
  (t, !fractions)

(* Replay a trace over K activities tracking, directly from frame sizes:
   the peak of the total live words (what the frame heap must hold) and
   each activity's peak stack extent (what a LIFO design must reserve,
   contiguously, per activity — every activity gets the worst-case stack
   because "a contiguous piece of storage large enough to hold the largest
   set of frames it will ever have" must be pre-committed). *)
let footprint ~activities trace =
  let ladder = Fpc_frames.Size_class.default in
  let block payload =
    match
      Fpc_frames.Size_class.index_for_block ladder
        (Fpc_frames.Frame.block_words_for_locals payload)
    with
    | Some fsi -> Fpc_frames.Size_class.block_words ladder fsi
    | None -> Fpc_frames.Size_class.max_block_words ladder
  in
  let stacks = Array.make activities [ block 8 ] in
  let words = Array.make activities (block 8) in
  let peaks = Array.copy words in
  let current = ref 0 in
  let total = ref (Array.fold_left ( + ) 0 words) in
  let peak_total = ref !total in
  List.iter
    (fun (e : Fpc_workload.Synthetic.event) ->
      (match e with
      | Fpc_workload.Synthetic.Call payload ->
        let b = block payload in
        stacks.(!current) <- b :: stacks.(!current);
        words.(!current) <- words.(!current) + b;
        total := !total + b
      | Fpc_workload.Synthetic.Return -> (
        match stacks.(!current) with
        | top :: (_ :: _ as rest) ->
          stacks.(!current) <- rest;
          words.(!current) <- words.(!current) - top;
          total := !total - top
        | _ -> ())
      | Fpc_workload.Synthetic.Coroutine_switch
      | Fpc_workload.Synthetic.Process_switch ->
        current := (!current + 1) mod activities);
      peaks.(!current) <- max peaks.(!current) words.(!current);
      peak_total := max !peak_total !total)
    trace;
  let worst_stack = Array.fold_left max 0 peaks in
  (!peak_total, activities * worst_stack)

let footprint_table () =
  let t =
    Tablefmt.create
      ~title:"Storage for K concurrent activities: frame heap vs LIFO stacks"
      ~columns:
        [
          ("activities", Tablefmt.Right);
          ("heap peak live words", Tablefmt.Right);
          ("LIFO reserved words", Tablefmt.Right);
          ("LIFO / heap", Tablefmt.Right);
        ]
  in
  let ratios = ref [] in
  List.iter
    (fun k ->
      let profile =
        {
          Fpc_workload.Synthetic.default_profile with
          coroutine_rate = 0.02;
          target_depth = 10;
          max_depth = 48;
        }
      in
      let trace = Fpc_workload.Synthetic.generate ~seed:9 ~profile ~length:60_000 () in
      let heap_words, reserved = footprint ~activities:k trace in
      ratios := (k, Harness.ratio reserved heap_words) :: !ratios;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int k;
          Tablefmt.cell_int heap_words;
          Tablefmt.cell_int reserved;
          Tablefmt.cell_ratio (Harness.ratio reserved heap_words);
        ])
    [ 2; 4; 8; 16; 32 ];
  Tablefmt.add_note t
    "the heap pays only the peak of the sum; the LIFO design pre-commits \
     every activity to the worst single-activity extent";
  (t, !ratios)

let uniformity_table () =
  (* Coroutine and process programs behave identically on every engine:
     the destination context decides the discipline, not the mechanism. *)
  let t =
    Tablefmt.create ~title:"Non-LIFO programs across engines (outputs compared)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("engines agreeing with I2", Tablefmt.Right);
          ("output words", Tablefmt.Right);
        ]
  in
  let all_agree = ref true in
  List.iter
    (fun program ->
      let reference =
        Fpc_core.State.output (Harness.run_one ~engine:Fpc_core.Engine.i2 ~program ())
      in
      let agree =
        List.filter
          (fun (_, engine) ->
            Fpc_core.State.output (Harness.run_one ~engine ~program ()) = reference)
          Harness.engines
      in
      if List.length agree <> List.length Harness.engines then all_agree := false;
      Tablefmt.add_row t
        [
          program;
          Printf.sprintf "%d/%d" (List.length agree) (List.length Harness.engines);
          Tablefmt.cell_int (List.length reference);
        ])
    [ "coroutine"; "processes" ];
  (t, !all_agree)

let run () =
  let t1, fractions = flush_table () in
  let t2, ratios = footprint_table () in
  let t3, all_agree = uniformity_table () in
  {
    Exp.id = "E11";
    key = "nonlifo";
    title = "Coroutines, processes and retained frames";
    paper_claim =
      "one mechanism handles non-LIFO transfers; LIFO-only designs need a \
       contiguous stack per activity (\xC2\xA71, \xC2\xA73, \xC2\xA76)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2; Tablefmt.render t3 ];
    headlines =
      [
        ("fast_fraction_no_coroutines", List.assoc 0.0 fractions);
        ("fast_fraction_20pct_coroutines", List.assoc 0.2 fractions);
        ("lifo_over_heap_8_activities", List.assoc 8 ratios);
        ("engines_agree", if all_agree then 1.0 else 0.0);
      ];
  }
