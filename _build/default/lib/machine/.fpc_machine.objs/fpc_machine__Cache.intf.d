lib/machine/cache.mli: Cost
