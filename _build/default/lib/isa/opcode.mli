(** The byte-coded instruction set of the simulated Mesa-style processor.

    §5 of the paper: instructions are one, two or three bytes; the encoding
    is stack-based and heavily optimised for local-variable references, with
    one-byte opcodes for the statically most frequent operations.  Calls:

    - [Efc n] — EXTERNALCALL through link-vector entry [n].  LV indices
      0–15 encode in a single byte, 16–255 in two ("a number of one-byte
      opcodes, so that the statically most frequently called procedures in a
      module can be called in a single byte").
    - [Lfc n] — LOCALCALL through entry-vector entry [n]; two bytes.
    - [Dfc a] — DIRECTCALL to absolute code byte-address [a]; four bytes
      (24-bit program address, §6).
    - [Sdfc d] — SHORTDIRECTCALL, PC-relative signed 20-bit displacement in
      three bytes via 16 opcodes (§6 D1).
    - [Xf] — the raw XFER primitive: pops a context word, transfers to it.
    - [Ret] — RETURN: frees the frame and XFERs to the returnLink.

    Stack conventions: binary operators pop [b] then [a] and push [a op b].
    [Stfld i] pops a value and stores it at [mem(top + i)] leaving the
    address on the stack (so records can be filled field by field);
    [Ldfld i] pops an address and pushes [mem(addr + i)] — this is the
    READFIELD of §4's interface calls. *)

type t =
  (* literals *)
  | Li of int  (** push a 16-bit literal *)
  | Lpd of int  (** push a packed context/descriptor word literal *)
  (* locals / globals; indices are in words from the variable base *)
  | Ll of int  (** push local[n] *)
  | Sl of int  (** pop into local[n] *)
  | Lg of int  (** push global[n] *)
  | Sg of int  (** pop into global[n] *)
  | Lla of int  (** push the storage address of local[n] (§7.4 pointers) *)
  | Lga of int  (** push the storage address of global[n] *)
  | Llx of int  (** pop index i, push local[n+i] — indexed local (arrays) *)
  | Slx of int  (** pop value, pop index i, local[n+i] := value *)
  | Lgx of int  (** pop index i, push global[n+i] *)
  | Sgx of int  (** pop value, pop index i, global[n+i] := value *)
  (* indirection *)
  | Rload  (** pop addr, push mem[addr] *)
  | Rstore  (** pop value, pop addr, mem[addr] := value *)
  | Ldfld of int  (** pop addr, push mem[addr+i] *)
  | Stfld of int  (** pop value, mem[top+i] := value, addr stays on stack *)
  | Newrec of int  (** allocate an n-word record from the frame heap, push addr *)
  | Freerec  (** pop record address, free it to the frame heap *)
  (* stack manipulation *)
  | Dup
  | Drop
  | Swap
  | Over
  (* arithmetic and comparisons (16-bit two's complement) *)
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Neg
  | Band
  | Bor
  | Bxor
  | Bnot
  | Lt
  | Le
  | Eq
  | Ne
  | Ge
  | Gt
  (* jumps; displacement is in bytes relative to the first byte of the jump *)
  | J of int
  | Jz of int  (** jump if popped value is zero *)
  | Jnz of int
  (* transfers *)
  | Efc of int
  | Lfc of int
  | Dfc of int
  | Sdfc of int
  | Xf
  | Ret
  | Lrc  (** push the current returnContext as a context word *)
  (* processes *)
  | Fork of int  (** pop descriptor, pop n argument words, create a process *)
  | Yield
  | Stopproc
  (* miscellany *)
  | Out  (** pop a word and append it to the observable output *)
  | Nop
  | Brk  (** deliberate trap, for tests *)
  | Halt

val encoded_length : t -> int
(** Encoded size in bytes (1–4). *)

val encode : t -> Buffer.t -> unit
(** Append the encoding.  Raises [Invalid_argument] when an operand is out
    of encodable range (e.g. a local index above 255). *)

val decode : fetch:(int -> int) -> pc:int -> t * int
(** [decode ~fetch ~pc] decodes the instruction whose first byte is at byte
    offset [pc], reading bytes through [fetch]; returns the instruction and
    its length.  Raises [Invalid_argument] on an illegal opcode byte. *)

val to_string : t -> string
(** Assembly-style rendering, e.g. ["EFC 3"]. *)

val equal : t -> t -> bool

val is_transfer : t -> bool
(** True for calls, XF, RET — the XFERs counted by experiment E10. *)

val max_short_efc : int
(** Highest LV index encodable in a one-byte EXTERNALCALL (15). *)

val sdfc_range : int * int
(** Inclusive displacement range of SHORTDIRECTCALL: (-2{^19}, 2{^19}-1) —
    "a three byte instruction can address one megabyte around the
    instruction" with 16 opcodes. *)
