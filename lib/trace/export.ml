open Fpc_util

(* Both exporters replay the event list through a shadow stack, the same
   discipline Profile uses; here the stack holds names.  A ring that
   wrapped loses the head of the run, so a Return against an empty stack
   re-syncs on the destination instead of failing. *)

let name_of procs pc = Procmap.name procs (Procmap.id_of_pc procs pc)

let final_of ?final_cycles (events : Event.t list) =
  match final_cycles with
  | Some c -> c
  | None -> (
    match List.rev events with e :: _ -> e.Event.cycles | [] -> 0)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON. *)

let chrome ~procs ~engine ?final_cycles events =
  let open Jsonout in
  let final = final_of ?final_cycles events in
  let out = ref [] in
  let push_ev j = out := j :: !out in
  let common = [ ("pid", Int 1); ("tid", Int 1) ] in
  push_ev
    (Obj
       ([ ("name", String "process_name"); ("ph", String "M") ]
       @ common
       @ [ ("args", Obj [ ("name", String ("fpc " ^ engine)) ]) ]));
  push_ev
    (Obj
       ([ ("name", String "thread_name"); ("ph", String "M") ]
       @ common
       @ [ ("args", Obj [ ("name", String "simulated machine") ]) ]));
  let duration ph name ts args =
    push_ev
      (Obj
         ([ ("name", String name); ("ph", String ph); ("ts", Int ts) ]
         @ common
         @ (match args with [] -> [] | l -> [ ("args", Obj l) ])))
  in
  let instant name ts args =
    push_ev
      (Obj
         ([
            ("name", String name);
            ("ph", String "i");
            ("ts", Int ts);
            ("s", String "t");
          ]
         @ common
         @ (match args with [] -> [] | l -> [ ("args", Obj l) ])))
  in
  let stack = ref [] in
  let open_frame name ts = stack := name :: !stack; duration "B" name ts [] in
  let close_top ts =
    match !stack with
    | [] -> ()
    | name :: rest ->
      stack := rest;
      duration "E" name ts []
  in
  let close_all ts = while !stack <> [] do close_top ts done in
  List.iter
    (fun (e : Event.t) ->
      let start = e.cycles - e.d_cycles in
      match e.kind with
      | Event.Begin | Event.Call ->
        open_frame (name_of procs e.target) (max 0 start)
      | Event.Return ->
        close_top e.cycles;
        if !stack = [] && e.target >= 0 then
          (* wrapped-ring resync: we never saw this frame open *)
          open_frame (name_of procs e.target) e.cycles
      | Event.Coroutine | Event.Switch ->
        close_all (max 0 start);
        if e.target >= 0 then open_frame (name_of procs e.target) e.cycles
      | Event.Fork -> instant "fork" e.cycles []
      | Event.Trap code ->
        instant "trap" e.cycles [ ("code", Int code) ];
        if e.target >= 0 then open_frame (name_of procs e.target) e.cycles
      | Event.Frame_alloc { words; via_ff; software } ->
        if software then
          instant "frame-alloc (software)" e.cycles
            [ ("words", Int words); ("via_ff", Bool via_ff) ]
      | Event.Frame_free _ -> ()
      | Event.Rs_push | Event.Rs_hit -> ()
      | Event.Rs_flush n -> instant "rs-flush" e.cycles [ ("entries", Int n) ]
      | Event.Rs_spill -> instant "rs-spill" e.cycles []
      | Event.Bank_load n -> instant "bank-load" e.cycles [ ("words", Int n) ]
      | Event.Bank_spill n -> instant "bank-spill" e.cycles [ ("words", Int n) ])
    events;
  close_all final;
  Obj
    [
      ("traceEvents", List (List.rev !out));
      ("displayTimeUnit", String "ns");
    ]

(* ------------------------------------------------------------------ *)
(* Folded stacks for flamegraphs. *)

let folded ~procs ?final_cycles events =
  let final = final_of ?final_cycles events in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let path () =
    match !stack with
    | [] -> "(outside)"
    | names -> String.concat ";" (List.rev names)
  in
  let charge p n =
    if n > 0 then
      match Hashtbl.find_opt counts p with
      | Some r -> r := !r + n
      | None -> Hashtbl.add counts p (ref n)
  in
  let last = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      let until = e.cycles - e.d_cycles in
      let span = max 0 (until - !last) in
      let op = e.cycles - !last - span in
      charge (path ()) span;
      (match e.kind with
      | Event.Begin | Event.Call ->
        stack := name_of procs e.target :: !stack;
        charge (path ()) op
      | Event.Return ->
        charge (path ()) op;
        (match !stack with
        | _ :: rest -> stack := rest
        | [] -> if e.target >= 0 then stack := [ name_of procs e.target ])
      | Event.Coroutine | Event.Switch ->
        stack := (if e.target >= 0 then [ name_of procs e.target ] else []);
        charge (path ()) op
      | Event.Trap _ ->
        if e.target >= 0 then stack := name_of procs e.target :: !stack;
        charge (path ()) op
      | Event.Fork | Event.Frame_alloc _ | Event.Frame_free _ | Event.Rs_push
      | Event.Rs_hit | Event.Rs_flush _ | Event.Rs_spill | Event.Bank_load _
      | Event.Bank_spill _ ->
        charge (path ()) op);
      last := e.cycles)
    events;
  charge (path ()) (max 0 (final - !last));
  let lines =
    Hashtbl.fold (fun p r acc -> (p, !r) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let buf = Buffer.create 256 in
  List.iter (fun (p, n) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" p n)) lines;
  Buffer.contents buf
