(** E5 — §6 D1: the space price of DIRECTCALL.

    "The call instruction is larger: four bytes instead of one... two
    bytes of LV entry are saved, so the space is only 30% more if the
    procedure is called only once from the module."  With
    SHORTDIRECTCALL: "the space is the same as in the current scheme for
    a single call of p from a module, and 50% more (6 bytes instead of 4)
    for two calls." *)

open Fpc_util

let analytic () =
  let t =
    Tablefmt.create ~title:"Bytes per imported procedure vs call-site count"
      ~columns:
        [
          ("call sites k", Tablefmt.Right);
          ("EFC: k*1 + 2 (LV)", Tablefmt.Right);
          ("DFC: k*4", Tablefmt.Right);
          ("DFC/EFC", Tablefmt.Right);
          ("SDFC: k*3", Tablefmt.Right);
          ("SDFC/EFC", Tablefmt.Right);
        ]
  in
  let ratios = ref [] in
  List.iter
    (fun k ->
      let efc = k + 2 and dfc = 4 * k and sdfc = 3 * k in
      ratios := (k, (Harness.ratio dfc efc, Harness.ratio sdfc efc)) :: !ratios;
      Tablefmt.add_row t
        [
          Tablefmt.cell_int k;
          Tablefmt.cell_int efc;
          Tablefmt.cell_int dfc;
          Tablefmt.cell_ratio (Harness.ratio dfc efc);
          Tablefmt.cell_int sdfc;
          Tablefmt.cell_ratio (Harness.ratio sdfc efc);
        ])
    [ 1; 2; 3; 4; 8 ];
  Tablefmt.add_note t
    "paper: one call site costs 30% more under DFC (4 vs 3 bytes); SDFC \
     matches EFC at one site and is 50% more at two (6 vs 4)";
  (t, List.assoc 1 !ratios, List.assoc 2 !ratios)

let measured () =
  let t =
    Tablefmt.create ~title:"Measured image space by linkage (whole suite)"
      ~columns:
        [
          ("program", Tablefmt.Left);
          ("linkage", Tablefmt.Left);
          ("call-site bytes", Tablefmt.Right);
          ("headers", Tablefmt.Right);
          ("LV words", Tablefmt.Right);
          ("code bytes", Tablefmt.Right);
        ]
  in
  let open Fpc_compiler in
  List.iter
    (fun program ->
      List.iter
        (fun (label, conv) ->
          let image = Harness.image_of ~convention:conv ~program () in
          let r = Fpc_mesa.Space.measure image in
          Tablefmt.add_row t
            [
              program;
              label;
              Tablefmt.cell_int (Fpc_mesa.Space.call_site_bytes r.call_sites);
              Tablefmt.cell_int r.header_bytes;
              Tablefmt.cell_int r.lv_words;
              Tablefmt.cell_int r.code_bytes;
            ])
        [
          ("external", Convention.external_);
          ("direct", Convention.direct);
          ("short", Convention.short_direct);
        ])
    [ "callchain"; "leafcalls"; "fib" ];
  t

let run () =
  let t1, (dfc1, sdfc1), (dfc2, sdfc2) = analytic () in
  let t2 = measured () in
  {
    Exp.id = "E5";
    key = "directcall_space";
    title = "DIRECTCALL space cost (D1)";
    paper_claim =
      "DFC: +30% at one call site; SDFC: parity at one site, +50% at two \
       (\xC2\xA76 D1)";
    tables = [ Tablefmt.render t1; Tablefmt.render t2 ];
    headlines =
      [
        ("dfc_ratio_1_site", dfc1);
        ("sdfc_ratio_1_site", sdfc1);
        ("dfc_ratio_2_sites", dfc2);
        ("sdfc_ratio_2_sites", sdfc2);
      ];
  }
