(** Aggregate accounting for a pool: job counts by outcome, host time
    split compile/run/wall, cache behaviour, and the total simulated work
    done (instructions, cycles, storage references).

    A {!t} is a mutable accumulator ({!record} itself is not
    synchronized): the pool keeps one per worker domain, feeds each from
    its own worker only, and {!merge_into}s the shards on demand;
    {!snapshot} freezes the merged result together with the wall clock
    and cache counters into the immutable record that {!render} (a
    {!Fpc_util.Tablefmt} table) and {!to_json} consume. *)

type t

val create : domains:int -> t

val record : t -> Job.result -> unit
(** Fold one completed job in.  Not thread-safe; callers serialize. *)

val note_shed : t -> unit
(** Count one request refused by admission control.  Shed requests never
    become {!Job.result}s (nothing ran), so they are counted here rather
    than through {!record}. *)

val observe_pending : t -> int -> unit
(** Raise the pending-jobs high-water mark if [pending] exceeds it. *)

val note_timer_deadline : t -> unit
(** Count one reply the reactor's timer wheel synthesized because a job's
    [deadline_ms] elapsed before its result came back (queue wait
    included).  The job itself still runs to a pool outcome — recorded by
    its worker as usual — so this counts extra replies, not jobs. *)

val merge_into : src:t -> into:t -> unit
(** Fold every count of [src] into [into] ([src] is left untouched).
    Counters add; the pending high-water mark merges with [max].  The
    pool keeps one single-writer accumulator per worker domain and
    merges the shards only when a snapshot is wanted, so recording a
    completion never touches shared state.  Not thread-safe; callers
    serialize per accumulator. *)

type proc_cost = {
  pc_name : string;
  pc_calls : int;
  pc_excl_cycles : int;
  pc_excl_refs : int;
}
(** Per-procedure exclusive cost aggregated across every traced job in
    the pool (the service-level view of the paper's cost attribution). *)

type snapshot = {
  domains : int;
  jobs : int;
  succeeded : int;
  failed : int;  (** all failures, {e including} fuel/deadline exhaustion *)
  fuel_exhausted : int;
  deadline_exceeded : int;  (** jobs whose wall-clock deadline fired *)
  timer_deadlines : int;
      (** replies synthesized by the serving reactor's timer wheel when a
          deadline elapsed before the pool answered (see
          {!note_timer_deadline}) *)
  shed : int;  (** requests refused by admission control (never ran) *)
  max_pending_observed : int;  (** pending-jobs high-water mark *)
  cache : Image_cache.stats;
  compile_s : float;  (** summed across jobs (overlaps across domains) *)
  run_s : float;  (** summed across jobs (overlaps across domains) *)
  translate_s : float;
      (** host seconds spent obtaining compiled-tier translations, summed
          (on a translation-cache hit this is just the lookup) *)
  translation_hits : int;
      (** compiled-tier jobs whose image already carried its translation *)
  translation_misses : int;  (** compiled-tier jobs that had to translate *)
  lazy_translated : int;  (** procedures translated lazily, summed over jobs *)
  fused_calls : int;  (** calls retired through fused call sites, summed *)
  invalidations : int;  (** fusion relink invalidations (high-water mark) *)
  devirt_jobs : int;  (** jobs that ran a link-time-devirtualized image *)
  devirt_sites : int;
      (** late-bound call sites eligible for devirtualization, summed per
          job (a hot image's sites count once per job that ran it) *)
  devirt_proven : int;  (** of those, proven single-target *)
  devirt_rewritten : int;  (** of those, rewritten to DIRECTCALL *)
  devirt_short : int;  (** of the rewritten, the short ±512 KB form *)
  wall_s : float;
  jobs_per_sec : float;  (** jobs / wall_s; 0 when wall_s is 0 *)
  minor_words : int;
      (** OCaml minor-heap words allocated executing jobs, summed — the
          GC pressure the service put on every domain (minor collections
          are stop-the-world across all of them) *)
  minor_words_per_job : float;  (** minor_words / jobs; 0 with no jobs *)
  instructions : int;  (** total simulated instructions *)
  cycles : int;  (** total simulated cycles *)
  mem_refs : int;  (** total simulated storage references *)
  traced_jobs : int;  (** jobs run with [trace=1] *)
  trace_events : int;  (** events folded across traced jobs *)
  proc_costs : proc_cost list;
      (** sorted by exclusive cycles descending (name breaks ties);
          empty when nothing was traced *)
}

val snapshot : t -> wall_s:float -> cache:Image_cache.stats -> snapshot

val render : snapshot -> string
(** An aligned plain-text table, same formatting path as the
    experiments. *)

val to_json : snapshot -> Fpc_util.Jsonout.t
