(** E16 — the compiled execution tier (extension).

    The paper defines the machine by its architecture and meters, not by
    how the host happens to execute it: "the encoding is independent of
    the interpreter" (§2), and "with either linkage the program behaves
    identically (except for space and speed)" (§6, §8).  E16 holds the
    threaded-code tier ({!Fpc_tier.Tier}) to that contract over the whole
    suite × all four engines — outputs, instruction counts, cycles,
    storage references and transfer counts must be bit-identical to the
    dispatch-loop interpreter — and reports what the tier buys at host
    speed: fusion coverage (the fraction of retired instructions executed
    inside multi-op superinstructions) and per-engine wall-clock speedup.

    Speedups here are single-threaded translate-excluded medians on small
    suite programs; they are bounded by the simulated metering (every
    cycle and storage reference is still accounted), so loop-dominated
    kernels gain the most and transfer-dense ones the least. *)

open Fpc_util

let timing_reps = 5

type tally = {
  mutable instrs : int;
  mutable super : int;
  mutable fast : int;
  mutable deopts : int;
  mutable mismatches : int;
  mutable interp_s : float;
  mutable tier_s : float;
}

let fingerprint (st : Fpc_core.State.t) =
  let m = st.metrics in
  ( Fpc_core.State.output st,
    m.instructions,
    Fpc_machine.Cost.cycles st.cost,
    Fpc_machine.Cost.mem_refs st.cost,
    (m.calls, m.returns, m.other_xfers, m.fast_transfers) )

(* Every run gets a fresh clone of the pristine image: execution mutates
   global frames, so reusing one image across runs would leak state.  The
   translation itself is clone-invariant (derived from the shared code
   bytes). *)
let boot ~image ~engine =
  let image = Fpc_mesa.Image.clone image in
  Fpc_interp.Interp.boot ~image ~engine ~instance:"Main" ~proc:"main" ~args:[]
    ()

(* Median-of-reps wall time for [f] applied to a freshly booted state:
   robust to a noisy host, and boot cost is paid identically on both
   sides of the comparison. *)
let time_runs ~image ~engine f =
  let samples =
    List.init timing_reps (fun _ ->
        let st = boot ~image ~engine in
        let t0 = Unix.gettimeofday () in
        f st;
        Unix.gettimeofday () -. t0)
  in
  match List.sort compare samples with
  | [] -> 0.0
  | sorted -> List.nth sorted (timing_reps / 2)

let run_engine (tally : tally) engine =
  List.iter
    (fun program ->
      let convention = Fpc_compiler.Convention.for_engine engine in
      let image = Harness.image_of ~convention ~program () in
      let tr = Fpc_tier.Tier.translate image in
      let sti = boot ~image ~engine in
      Fpc_interp.Interp.run sti;
      Harness.must_halt sti;
      let stc = boot ~image ~engine in
      Fpc_tier.Tier.run tr stc;
      Harness.must_halt stc;
      if fingerprint sti <> fingerprint stc then
        tally.mismatches <- tally.mismatches + 1;
      tally.instrs <- tally.instrs + stc.metrics.instructions;
      tally.super <- tally.super + stc.metrics.tier_super_instrs;
      tally.fast <- tally.fast + stc.metrics.tier_fast_instrs;
      tally.deopts <- tally.deopts + stc.metrics.tier_deopts;
      tally.interp_s <-
        tally.interp_s +. time_runs ~image ~engine Fpc_interp.Interp.run;
      tally.tier_s <-
        tally.tier_s +. time_runs ~image ~engine (Fpc_tier.Tier.run tr))
    Fpc_workload.Programs.names

let run () =
  let t =
    Tablefmt.create
      ~title:"Compiled tier vs interpreter (whole suite, per engine)"
      ~columns:
        [
          ("engine", Tablefmt.Left);
          ("mismatches", Tablefmt.Right);
          ("fused instrs", Tablefmt.Right);
          ("fast instrs", Tablefmt.Right);
          ("deopts", Tablefmt.Right);
          ("speedup", Tablefmt.Right);
        ]
  in
  let pct a b = 100.0 *. Harness.ratio a b in
  let total = ref 0 and total_super = ref 0 and total_fast = ref 0 in
  let mismatches = ref 0 in
  let speedups =
    List.map
      (fun (name, engine) ->
        let tally =
          {
            instrs = 0;
            super = 0;
            fast = 0;
            deopts = 0;
            mismatches = 0;
            interp_s = 0.0;
            tier_s = 0.0;
          }
        in
        run_engine tally engine;
        total := !total + tally.instrs;
        total_super := !total_super + tally.super;
        total_fast := !total_fast + tally.fast;
        mismatches := !mismatches + tally.mismatches;
        let speedup =
          if tally.tier_s > 0.0 then tally.interp_s /. tally.tier_s else 0.0
        in
        Tablefmt.add_row t
          [
            name;
            Tablefmt.cell_int tally.mismatches;
            Printf.sprintf "%.1f%%" (pct tally.super tally.instrs);
            Printf.sprintf "%.1f%%" (pct tally.fast tally.instrs);
            Tablefmt.cell_int tally.deopts;
            Printf.sprintf "%.2fx" speedup;
          ];
        (name, speedup))
      Harness.engines
  in
  let fusion = pct !total_super !total in
  let fast = pct !total_fast !total in
  Tablefmt.add_note t
    (Printf.sprintf
       "suite aggregate: %.1f%% of instructions fused, %.1f%% on the fast \
        path; every output and every simulated meter identical across tiers"
       fusion fast);
  Tablefmt.add_note t
    "speedups are host wall clock (translate excluded, median of runs); the \
     simulated meters are engine-defined and tier-invariant by construction";
  {
    Exp.id = "E16";
    key = "tier";
    title = "Threaded-code tier: bit-identical meters at host speed";
    paper_claim =
      "the encoding is independent of the interpreter (\xC2\xA72); with \
       either linkage the program behaves identically (except for space and \
       speed) (\xC2\xA76, \xC2\xA78)";
    tables = [ Tablefmt.render t ];
    headlines =
      ([
         ("mismatches", float_of_int !mismatches);
         ("fusion_coverage_pct", fusion);
         ("fastpath_coverage_pct", fast);
       ]
      @ List.map (fun (n, s) -> ("speedup_" ^ String.lowercase_ascii n, s))
          speedups);
  }
