(** The comparator the paper argues against (§1): a conventional
    VAX-CALLS-flavoured calling convention on a contiguous stack.

    A call pushes the argument words, then a linkage block (return PC,
    saved frame pointer, argument pointer, register-save mask) and the
    callee's saved registers, then advances SP over the locals; a return
    pops it all back.  Every one of those words is a real storage
    reference on the simulated memory, so per-call costs are measured, not
    assumed.

    The structural point of §1 is also modelled: "most such architectures
    can support only a strictly last-in first-out pattern of transfers...
    each coroutine or process needs a contiguous piece of storage large
    enough to hold the largest set of frames it will ever have".
    {!reserve_activity} prices exactly that: one maximal contiguous stack
    per coroutine/process, against the frame heap's pay-as-you-go
    allocation (experiment E11). *)

type config = {
  saved_registers : int;  (** registers saved/restored per call (default 4) *)
  linkage_words : int;  (** PC, FP, AP, mask — 4 words *)
}

val default_config : config

type t

val create :
  ?config:config ->
  mem:Fpc_machine.Memory.t ->
  stack_base:int ->
  stack_limit:int ->
  unit ->
  t

exception Stack_exhausted

val call : t -> nargs:int -> locals_words:int -> unit
(** Push arguments, linkage and saved registers; allocate locals. *)

val return_ : t -> unit
(** Pop the top activation.  Raises [Invalid_argument] when the stack is
    empty. *)

val depth : t -> int
val sp : t -> int
val high_water : t -> int
(** Maximum words of stack ever in use. *)

val calls : t -> int
val words_per_call : t -> config -> nargs:int -> locals_words:int -> int
(** Storage words written by one call (analytic, equals what [call]
    meters). *)

(** {1 The structural restriction} *)

type activity_plan = {
  activities : int;  (** coroutines or processes *)
  max_depth : int;
  mean_frame_words : int;
}

val reserve_activity : activity_plan -> int
(** Words of storage a LIFO-only architecture must reserve: one maximal
    contiguous stack per activity. *)
