(** Full-width descriptor tables for the simple implementation I1 (§4).

    The natural implementation represents a procedure descriptor as an
    unpacked pair (pointer to code, pointer to environment) — two words
    instead of the Mesa encoding's one, and with no GFT or entry-vector
    indirection.  [install] materialises, for every instance, a
    {e simple link vector} (imports) and a {e simple entry vector} (its own
    procedures), each entry two words:

    {v
    word 0:  absolute entry byte address, low 16 bits
    word 1:  environment (global frame) address | (entry address bit 16)
    v}

    (The global frame is quad-aligned so its two low bits are free; bit 0
    carries the 17th address bit a 128 KB code space needs — exactly the
    kind of width pressure §5's packing exists to relieve.)

    Resolution therefore costs two storage reads and lands directly on the
    procedure: fewer references than the Mesa chain, at twice the table
    width and with none of its relocation freedoms. *)

type t

val install : Fpc_mesa.Image.t -> t
(** Builds the tables in the image's static region.  Call once per image
    before running under the [Simple] engine. *)

val reinstall : t -> Fpc_mesa.Image.t -> unit
(** Rebuild the tables into a reset image's static region, reusing [t]'s
    hashtables (arena reuse: a reset erased the static region and rewound
    the cursor, so the same bases are re-carved and re-poked). *)

(** Resolutions return both halves packed into one immediate int —
    [(entry_abs_byte lsl 16) lor gf_addr] — so the per-call path allocates
    nothing.  Split them with {!pair_abs} / {!pair_gf}. *)

val pair_abs : int -> int
val pair_gf : int -> int

val resolve_import : t -> Fpc_mesa.Image.t -> instance:string -> lv_index:int -> int
(** Packed [(entry_abs_byte, gf_addr)], charging two metered reads. *)

val resolve_own : t -> Fpc_mesa.Image.t -> instance:string -> ev_index:int -> int
(** Same, for the instance's own procedure [ev_index]. *)

val resolve_import_by_gf : t -> Fpc_mesa.Image.t -> gf:int -> lv_index:int -> int
(** As {!resolve_import}, identifying the instance by its global-frame
    address (the machine's GF register). *)

val resolve_own_by_gf : t -> Fpc_mesa.Image.t -> gf:int -> ev_index:int -> int

val peek_resolve_import_by_gf :
  t -> Fpc_mesa.Image.t -> gf:int -> lv_index:int -> int
(** Unmetered {!resolve_import_by_gf} for the compiled tier's fused-call
    guards; returns [-1] when [gf] names no installed instance. *)

val peek_resolve_own_by_gf :
  t -> Fpc_mesa.Image.t -> gf:int -> ev_index:int -> int
(** Unmetered {!resolve_own_by_gf}; [-1] when [gf] is unknown. *)

val expected_pair :
  Fpc_mesa.Image.t -> target_instance:string -> target_proc:string -> int
(** The packed pair {!install} writes for this target — what a table read
    returns while the binding is pristine.  Lets the tier bake a
    resolution at translate time and compare at run time. *)

val rebind :
  t ->
  Fpc_mesa.Image.t ->
  instance:string ->
  lv_index:int ->
  target:string * string ->
  unit
(** Re-point one import pair at a new target (the I1 analogue of
    {!Fpc_mesa.Linker.rebind_lv}), notifying the image's relink observer.
    Raises [Invalid_argument] on a bad index, [Not_found] on unknown
    names. *)

val resolve_descriptor : t -> Fpc_mesa.Image.t -> gfi:int -> ev:int -> int
(** Resolve a packed descriptor context under I1 semantics (an XFER with a
    first-class procedure value): the descriptor record is read at
    full width — two metered reads. *)

val table_words : t -> int
(** Total words the simple tables occupy (space accounting for E2). *)
