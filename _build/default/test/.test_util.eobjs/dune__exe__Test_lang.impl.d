test/test_lang.ml: Alcotest Ast Buffer Fpc_compiler Fpc_core Fpc_lang Lexer List Parser Pretty Printf QCheck QCheck_alcotest String Typecheck
