lib/workload/distributions.ml: Fpc_util Histogram Prng
