lib/experiments/e04_frame_alloc.ml: Alloc_vector Buffer Cost Exp Fpc_frames Fpc_machine Fpc_util Fpc_workload Lazy List Memory Printf Size_class String Tablefmt
